"""Closed-loop elastic traffic: a TCP-Reno-flavoured AIMD source.

The open-loop generators in :mod:`repro.traffic.generators` model voice
and fixed-rate applications; the "migrate applications to converged IP
networks" traffic of the paper's conclusion is *elastic* — it fills
whatever the network gives it and backs off on loss.  This module
implements the essentials of Reno congestion control over the simulated
network, with a go-back-N retransmission model:

* slow start (cwnd += 1 per ACK below ssthresh),
* congestion avoidance (cwnd += 1/cwnd per ACK),
* fast retransmit on 3 duplicate ACKs (multiplicative decrease),
* retransmission timeout with exponential RTT estimation (cwnd → 1).

The receiver side is a tiny responder installed on the destination node:
it cumulatively ACKs in-order data, and the ACKs travel back through the
simulated network (so reverse-path congestion is real too).

Elastic flows are what make the RED-vs-DropTail ablation (E9b) mean what
it meant in 1993: with closed loops, early random drops keep the pipe
full at low delay, while DropTail synchronizes the sawteeth.
"""

from __future__ import annotations


from repro.net.address import IPv4Address
from repro.net.node import Node
from repro.net.packet import IPHeader, Packet
from repro.sim.engine import Simulator, Timer

__all__ = ["ElasticSource"]


class ElasticSource:
    """One AIMD bulk-transfer flow between two hosts.

    Parameters
    ----------
    sim, src_node, dst_node:
        Endpoints; both must be routable toward each other.
    flow:
        Flow id for the data packets; ACKs use ``"<flow>.ack"``.
    mss_bytes:
        Data payload per segment.
    dscp:
        Marking for the data direction (ACKs inherit it).
    initial_ssthresh:
        Slow-start threshold in segments.
    max_cwnd:
        Cap on the window (receiver-window stand-in).
    """

    def __init__(
        self,
        sim: Simulator,
        src_node: Node,
        dst_node: Node,
        src_addr: IPv4Address | str,
        dst_addr: IPv4Address | str,
        flow: str = "elastic",
        mss_bytes: int = 1400,
        dscp: int = 0,
        dst_port: int = 80,
        initial_ssthresh: int = 32,
        max_cwnd: int = 128,
    ) -> None:
        self.sim = sim
        self.src_node = src_node
        self.dst_node = dst_node
        self.src = IPv4Address.parse(src_addr)
        self.dst = IPv4Address.parse(dst_addr)
        self.flow = flow
        self.mss = mss_bytes
        self.dscp = dscp
        self.dst_port = dst_port

        # Congestion state (cwnd in segments, possibly fractional in CA).
        self.cwnd = 1.0
        self.ssthresh = float(initial_ssthresh)
        self.max_cwnd = float(max_cwnd)
        self._next_seq = 0          # next new segment to send
        self._acked = 0             # next seq the receiver expects
        self._dupacks = 0
        self._running = False

        # RTT estimation (RFC 6298-style, coarse).
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._rto = 0.5
        self._send_times: dict[int, float] = {}
        self._timer = Timer(sim, self._on_timeout)

        # Receiver state lives here too (the responder is stateless apart
        # from the cumulative counter).
        self._rcv_next = 0
        self.delivered_segments = 0
        self.retransmits = 0
        self.timeouts = 0
        self.fast_retransmits = 0

        dst_node.add_local_sink(self._receiver)
        src_node.add_local_sink(self._on_ack)

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    def start(self, at: float = 0.0) -> None:
        self._running = True
        self.sim.schedule_at(max(at, self.sim.now), self._pump)

    def stop(self) -> None:
        self._running = False
        self._timer.cancel()

    def _pump(self) -> None:
        """Send while the window allows."""
        if not self._running:
            return
        while self._next_seq < self._acked + int(self.cwnd):
            self._send_segment(self._next_seq)
            self._next_seq += 1
        if not self._timer.armed:
            self._timer.start(self._rto)

    def _send_segment(self, seq: int) -> None:
        pkt = Packet(
            ip=IPHeader(self.src, self.dst, dscp=self.dscp, proto="tcp",
                        dst_port=self.dst_port),
            payload_bytes=self.mss,
            flow=self.flow,
            seq=seq,
            created=self.sim.now,
        )
        self._send_times.setdefault(seq, self.sim.now)
        self.src_node.send(pkt)

    # ------------------------------------------------------------------
    def _on_ack(self, pkt: Packet) -> None:
        if pkt.flow != f"{self.flow}.ack" or not self._running:
            return
        ack = pkt.seq  # cumulative: next expected seq
        if ack > self._acked:
            self._sample_rtt(ack - 1)
            newly = ack - self._acked
            self._acked = ack
            self._dupacks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd + newly, self.max_cwnd)
            else:
                self.cwnd = min(self.cwnd + newly / self.cwnd, self.max_cwnd)
            self._timer.start(self._rto)  # restart for remaining data
            self._pump()
        else:
            self._dupacks += 1
            if self._dupacks == 3:
                # Fast retransmit + multiplicative decrease (go-back-N).
                self.fast_retransmits += 1
                self.ssthresh = max(self.cwnd / 2.0, 2.0)
                self.cwnd = self.ssthresh
                self._go_back()

    def _sample_rtt(self, seq: int) -> None:
        t0 = self._send_times.pop(seq, None)
        # Drop all earlier samples (cumulative ACK covers them).
        for s in [s for s in self._send_times if s < seq]:
            self._send_times.pop(s, None)
        if t0 is None:
            return
        rtt = self.sim.now - t0
        if self._srtt is None:
            self._srtt, self._rttvar = rtt, rtt / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - rtt)
            self._srtt = 0.875 * self._srtt + 0.125 * rtt
        self._rto = max(0.05, self._srtt + 4 * self._rttvar)

    def _on_timeout(self) -> None:
        if not self._running or self._acked >= self._next_seq:
            return
        self.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self._rto = min(self._rto * 2, 10.0)  # backoff
        self._go_back()

    def _go_back(self) -> None:
        """Go-back-N: resend from the first unacknowledged segment."""
        self.retransmits += self._next_seq - self._acked
        self._next_seq = self._acked
        self._send_times.clear()
        self._timer.start(self._rto)
        self._pump()

    # ------------------------------------------------------------------
    # Receiver (runs at dst_node)
    # ------------------------------------------------------------------
    def _receiver(self, pkt: Packet) -> None:
        if pkt.flow != self.flow:
            return
        if pkt.seq == self._rcv_next:
            self._rcv_next += 1
            self.delivered_segments += 1
        # Cumulative ACK either way (dup ACK when out of order).
        ack = Packet(
            ip=IPHeader(self.dst, self.src, dscp=self.dscp, proto="tcp",
                        src_port=self.dst_port),
            payload_bytes=20,
            flow=f"{self.flow}.ack",
            seq=self._rcv_next,
            created=self.sim.now,
        )
        self.dst_node.send(ack)

    # ------------------------------------------------------------------
    @property
    def goodput_bytes(self) -> int:
        """In-order bytes delivered to the receiver."""
        return self.delivered_segments * self.mss

    def goodput_bps(self, duration_s: float) -> float:
        return self.goodput_bytes * 8.0 / duration_s if duration_s > 0 else 0.0
