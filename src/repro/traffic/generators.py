"""Open-loop traffic generators.

The experiment mixes follow the paper's motivating workloads: voice needs
EF (constant-bit-rate, small packets, tight delay/jitter), transactional
data needs AF (bursty on–off), and bulk/best-effort fills whatever is left
(greedy CBR at overload).  Generators are event-driven — each emission
schedules the next — and take a named RNG stream so traffic is identical
across configuration A/B runs (see repro.sim.randomness).

Packet shells come from the process-wide :data:`repro.net.packet.POOL`
freelist while :data:`POOLING` is on (the default); delivered packets are
recycled by ``Node.deliver_local``.  ``reference_stack`` flips the flag
off so the pre-PR allocation behaviour can be benchmarked against.
Sources emitting back-to-back trains can pass ``burst > 1`` to amortise
one scheduler event over the whole train instead of paying one per
packet.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.net.address import IPv4Address
from repro.net.packet import POOL, IPHeader, Packet
from repro.sim.engine import Simulator

#: When True (default) sources acquire packet shells from the freelist;
#: benchmarks flip this off to measure the pre-pool allocation cost.
POOLING = True

__all__ = [
    "TrafficSource",
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
    "ParetoOnOffSource",
    "voice_source",
]

SendFn = Callable[[Packet], None]


class TrafficSource:
    """Base generator: identity, addressing, lifecycle, accounting.

    Parameters
    ----------
    sim:
        Simulation kernel.
    send:
        Callable injecting a packet into the network (usually
        ``host.send``).
    flow:
        Flow identifier stamped on every packet (sinks filter on it).
    src / dst:
        Addresses for the IP header.
    payload_bytes:
        L4 payload per packet.
    dscp / proto / ports:
        Header marking; DSCP 0 models an unmarked customer ("the CPE
        marks" scenarios instead install a marker conditioner).
    """

    def __init__(
        self,
        sim: Simulator,
        send: SendFn,
        flow: str,
        src: IPv4Address | str,
        dst: IPv4Address | str,
        payload_bytes: int = 1000,
        dscp: int = 0,
        proto: str = "udp",
        src_port: int = 0,
        dst_port: int = 0,
        burst: int = 1,
    ) -> None:
        self.sim = sim
        self._send = send
        self.flow = flow
        self.src = IPv4Address.parse(src)
        self.dst = IPv4Address.parse(dst)
        self.payload_bytes = payload_bytes
        self.dscp = dscp
        self.proto = proto
        self.src_port = src_port
        self.dst_port = dst_port
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.burst = burst
        self.sent = 0
        self.bytes_sent = 0
        self._running = False
        self._stop_at: float | None = None
        # Vector emission: when ``send`` is a node's stock bound ``send``
        # and the node offers ``send_batch`` (Host does), a multi-packet
        # train is injected with one call instead of one per packet.
        # Customized send callables (test sinks, wrappers) always get the
        # scalar per-packet path.
        self._send_batch: Callable[[list[Packet]], None] | None = None
        owner = getattr(send, "__self__", None)
        if owner is not None and getattr(send, "__func__", None) is getattr(
            type(owner), "send", None
        ):
            from repro.obs.runtime import vector_mode_enabled

            if vector_mode_enabled():
                self._send_batch = getattr(owner, "send_batch", None)

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0, stop_at: float | None = None) -> None:
        """Begin emitting at time ``at``; stop after ``stop_at`` if given."""
        self._stop_at = stop_at
        self._running = True
        self.sim.schedule_at(max(at, self.sim.now), self._emit)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _make_packet(self, now: float) -> Packet:
        header = IPHeader(
            src=self.src,
            dst=self.dst,
            dscp=self.dscp,
            proto=self.proto,
            src_port=self.src_port,
            dst_port=self.dst_port,
        )
        if POOLING:
            return POOL.acquire(
                header, self.payload_bytes, self.flow, self.sent, now
            )
        return Packet(
            ip=header,
            payload_bytes=self.payload_bytes,
            flow=self.flow,
            seq=self.sent,
            created=now,
        )

    def _emit(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            self._running = False
            return
        # One wake-up emits the whole burst (a back-to-back train shares
        # the timestamp) and schedules a single follow-up event; the gaps
        # the train would have consumed are summed into that one delay.
        gap: Optional[float] = None
        send_batch = self._send_batch
        if send_batch is not None and self.burst > 1:
            # Vector emission: build the train, inject it with one call.
            # Packet contents, seq numbers, and RNG draws are identical to
            # the scalar interleave — a gap draw neither reads nor affects
            # anything a send touches.
            train: list[Packet] = []
            append = train.append
            make = self._make_packet
            next_gap = self.next_gap
            for _ in range(self.burst):
                pkt = make(now)
                self.sent += 1
                self.bytes_sent += pkt.wire_bytes
                append(pkt)
                step = next_gap()
                if step is None:
                    gap = None
                    break
                gap = step if gap is None else gap + step
            if len(train) == 1:
                self._send(train[0])
            else:
                send_batch(train)
            if gap is not None:
                self.sim.schedule(gap, self._emit)
            return
        for _ in range(self.burst):
            pkt = self._make_packet(now)
            self.sent += 1
            self.bytes_sent += pkt.wire_bytes
            self._send(pkt)
            step = self.next_gap()
            if step is None:
                gap = None
                break
            gap = step if gap is None else gap + step
        if gap is not None:
            self.sim.schedule(gap, self._emit)

    def next_gap(self) -> Optional[float]:
        """Seconds until the next emission; None ends the flow."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def offered_rate_bps(self) -> float:
        """Nominal offered load (subclasses refine)."""
        raise NotImplementedError


class CbrSource(TrafficSource):
    """Constant bit rate: fixed inter-packet gap."""

    def __init__(self, *args, rate_bps: float = 64e3, **kw) -> None:
        super().__init__(*args, **kw)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps

    def next_gap(self) -> float:
        # Gap derived from the *wire* size so offered load is exact.
        wire = self.payload_bytes + 20
        return wire * 8.0 / self.rate_bps

    @property
    def offered_rate_bps(self) -> float:
        return self.rate_bps


class PoissonSource(TrafficSource):
    """Poisson arrivals: exponential gaps at a mean rate."""

    def __init__(self, *args, rate_bps: float = 1e6, rng: np.random.Generator, **kw) -> None:
        super().__init__(*args, **kw)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps
        self.rng = rng
        wire = self.payload_bytes + 20
        self._mean_gap = wire * 8.0 / rate_bps

    def next_gap(self) -> float:
        return float(self.rng.exponential(self._mean_gap))

    @property
    def offered_rate_bps(self) -> float:
        return self.rate_bps


class OnOffSource(TrafficSource):
    """Markov on–off: exponential on/off sojourns, CBR at ``peak_bps`` while on.

    Mean rate = peak · on/(on+off).  The standard bursty-data model.
    """

    def __init__(
        self,
        *args,
        peak_bps: float = 2e6,
        mean_on_s: float = 0.1,
        mean_off_s: float = 0.4,
        rng: np.random.Generator,
        **kw,
    ) -> None:
        super().__init__(*args, **kw)
        if peak_bps <= 0 or mean_on_s <= 0 or mean_off_s < 0:
            raise ValueError("invalid on-off parameters")
        self.peak_bps = peak_bps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.rng = rng
        self._burst_remaining = 0.0

    def _draw_burst(self) -> None:
        self._burst_remaining = float(self.rng.exponential(self.mean_on_s))

    def next_gap(self) -> float:
        wire = self.payload_bytes + 20
        gap = wire * 8.0 / self.peak_bps
        if self._burst_remaining <= 0.0:
            self._draw_burst()
            off = float(self.rng.exponential(self.mean_off_s)) if self.mean_off_s > 0 else 0.0
            self._burst_remaining -= gap
            return off + gap
        self._burst_remaining -= gap
        return gap

    @property
    def offered_rate_bps(self) -> float:
        duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        return self.peak_bps * duty


class ParetoOnOffSource(OnOffSource):
    """Heavy-tailed on–off (Pareto sojourns): self-similar aggregate traffic.

    ``shape`` must exceed 1 for a finite mean; 1.5 is the classic choice
    that produces long-range dependence in the aggregate.
    """

    def __init__(self, *args, shape: float = 1.5, **kw) -> None:
        super().__init__(*args, **kw)
        if shape <= 1.0:
            raise ValueError("Pareto shape must exceed 1 for a finite mean")
        self.shape = shape

    def _pareto(self, mean: float) -> float:
        # Lomax/Pareto-II with given mean: scale = mean * (shape - 1).
        scale = mean * (self.shape - 1.0)
        return float(self.rng.pareto(self.shape) * scale)

    def _draw_burst(self) -> None:
        self._burst_remaining = self._pareto(self.mean_on_s)

    def next_gap(self) -> float:
        wire = self.payload_bytes + 20
        gap = wire * 8.0 / self.peak_bps
        if self._burst_remaining <= 0.0:
            self._draw_burst()
            off = self._pareto(self.mean_off_s) if self.mean_off_s > 0 else 0.0
            self._burst_remaining -= gap
            return off + gap
        self._burst_remaining -= gap
        return gap


def voice_source(
    sim: Simulator,
    send: SendFn,
    flow: str,
    src: IPv4Address | str,
    dst: IPv4Address | str,
    dscp: int = 46,
) -> CbrSource:
    """G.711-like voice: 160-byte payload every 20 ms (64 kbps codec)."""
    return CbrSource(
        sim, send, flow, src, dst,
        payload_bytes=160, dscp=dscp, proto="udp", dst_port=5004,
        rate_bps=(160 + 20) * 8 / 0.020,
    )
