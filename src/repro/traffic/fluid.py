"""Hybrid fluid/packet traffic plane: flow aggregates as rate envelopes.

The packet-level plane simulates every packet of every flow, so E2-class
QoS experiments top out at thousands of flows while E1 provisions 1000
sites.  This module adds the classic hybrid-simulation speedup: a
:class:`FluidAggregate` bundles many CBR/Poisson/on-off sources for one
(VRF, class, src→dst) tuple into a piecewise-constant *rate envelope*;
a :class:`FluidRouter` propagates envelopes along the already-computed
forwarding paths, charging link utilization analytically
(:meth:`repro.net.link.Interface.set_fluid_load`) and decrementing
nothing per packet.  Where the summed envelope rate exceeds a
configurable *headroom* fraction of a link's capacity — i.e. where
queueing actually decides loss/delay/jitter — a :class:`PacketExpander`
materializes real packets from the envelope and hands them to the
existing forwarding path (``Node.receive`` → ``ForwardingPipeline``),
so DiffServ queues, RED, shapers, and the SLO engine see genuine
packets exactly where it matters.

Envelope epochs ride the same event heap as packet events
(:meth:`repro.sim.engine.Simulator.every`), so fluid and packet state
stay causally ordered on one clock.  Determinism: all stochastic
envelope redraws come from named RNG streams
(:class:`repro.sim.randomness.RandomStreams`), so hybrid runs are
exactly repeatable and variance-isolated from the packet plane's draws.

What hybrid mode preserves, and what it abstracts (the parity contract
of ``tests/test_hybrid_parity.py``; see docs/ARCHITECTURE.md §12):

* Packets that cross a congested hop are *real* from the first such hop
  onward — their creation timestamps reproduce the source's emission
  schedule exactly (a virtual creation clock, offset by the analytic
  delay of the fluid prefix), so end-to-end delay distributions are
  comparable to pure-packet runs.
* On uncongested fluid segments, per-packet queueing noise is replaced
  by the analytic serialization + propagation delay; burstiness *within*
  an epoch is replaced by the envelope's constant rate.  Hybrid is
  therefore bit-inexact by design — it must only agree within the
  documented tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import networkx as nx

from repro.net.address import IPv4Address
from repro.net.link import Interface
from repro.net.packet import POOL, IPHeader, Packet
from repro.sim.engine import Periodic, Simulator
from repro.traffic import generators as _generators

__all__ = ["FluidAggregate", "PacketExpander", "FluidRouter", "FluidPath"]

#: Default fraction of link capacity the fluid plane may occupy before
#: aggregates crossing that link are expanded to real packets.
DEFAULT_HEADROOM = 0.85

#: Default envelope epoch length (seconds): how often stochastic
#: envelopes are redrawn and expansion points re-evaluated.
DEFAULT_UPDATE_S = 0.1


class FluidAggregate:
    """``n_flows`` homogeneous open-loop sources as one rate envelope.

    Parameters mirror :class:`repro.traffic.generators.TrafficSource`
    plus the aggregate shape:

    ``kind``
        ``"cbr"`` — constant ``n_flows * rate_bps`` envelope;
        ``"poisson"`` — same constant *mean* envelope (the fluid
        abstraction keeps only the mean; Poisson packetization noise is
        reintroduced at measurement points only if the aggregate is
        expanded);
        ``"onoff"`` — each epoch redraws the number of active sources
        ``~ Binomial(n_flows, duty)`` with ``duty = mean_on/(mean_on +
        mean_off)``, giving a piecewise-constant envelope at
        ``active * peak_bps``.  Requires ``rng`` (a named stream).

    Accounting is split by regime: while *fluid*, offered load is
    integrated analytically (``fluid_delivered_packets/bytes`` — no loss
    by construction, since expansion happens before any link the fluid
    plane would congest); while *expanded*, the expander's real packets
    carry the counts and losses happen in real queues.  ``sent`` is the
    merged offered-packet total, comparable to a ``TrafficSource.sent``.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: str,
        src: IPv4Address | str,
        dst: IPv4Address | str,
        *,
        n_flows: int = 1,
        payload_bytes: int = 1000,
        dscp: int = 0,
        proto: str = "udp",
        src_port: int = 0,
        dst_port: int = 0,
        kind: str = "cbr",
        rate_bps: float | None = None,
        peak_bps: float | None = None,
        mean_on_s: float = 0.1,
        mean_off_s: float = 0.4,
        rng: Any = None,
    ) -> None:
        if kind not in ("cbr", "poisson", "onoff"):
            raise ValueError(f"unknown fluid kind {kind!r}")
        if n_flows < 1:
            raise ValueError("n_flows must be at least 1")
        if kind in ("cbr", "poisson"):
            if rate_bps is None or rate_bps <= 0:
                raise ValueError(f"{kind} aggregate needs a positive rate_bps")
        else:
            if peak_bps is None or peak_bps <= 0:
                raise ValueError("onoff aggregate needs a positive peak_bps")
            if mean_on_s <= 0 or mean_off_s < 0:
                raise ValueError("invalid on-off parameters")
            if rng is None:
                raise ValueError("onoff aggregate needs a named RNG stream")
        self.sim = sim
        self.flow = flow
        self.src = IPv4Address.parse(src)
        self.dst = IPv4Address.parse(dst)
        self.n_flows = n_flows
        self.payload_bytes = payload_bytes
        self.dscp = dscp
        self.proto = proto
        self.src_port = src_port
        self.dst_port = dst_port
        self.kind = kind
        self.rate_bps = rate_bps
        self.peak_bps = peak_bps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.rng = rng
        self.wire_bytes = payload_bytes + 20
        #: Current envelope rate (bps); piecewise constant between epochs.
        self.rate_now = self._mean_rate() if kind != "onoff" else 0.0
        #: Analytic end-to-end path delay, set by the owning FluidRouter.
        self.analytic_delay_s = 0.0
        # -- fluid-regime accounting (whole packets surface lazily) ----
        self._fluid_pkts = 0.0     # fractional offered-packet integral
        self._fluid_bits = 0.0
        self._slo_reported = 0     # packets already pushed to the SLO engine
        # -- expanded-regime accounting (bumped by the PacketExpander) --
        self.expanded_sent = 0
        self.expanded_bytes = 0

    # ------------------------------------------------------------------
    def _mean_rate(self) -> float:
        if self.kind in ("cbr", "poisson"):
            return self.n_flows * float(self.rate_bps)
        duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        return self.n_flows * float(self.peak_bps) * duty

    @property
    def offered_rate_bps(self) -> float:
        """Nominal mean offered load (same contract as TrafficSource)."""
        return self._mean_rate()

    def update_envelope(self) -> float:
        """Redraw the envelope rate for the coming epoch; returns it.

        Deterministic given the named stream — the draw order is one
        binomial per epoch per on-off aggregate, independent of the
        packet plane.
        """
        if self.kind == "onoff":
            duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
            active = int(self.rng.binomial(self.n_flows, duty))
            self.rate_now = active * float(self.peak_bps)
        return self.rate_now

    # ------------------------------------------------------------------
    def account_fluid(self, dt: float) -> None:
        """Integrate one epoch of fully-fluid delivery at ``rate_now``."""
        if dt <= 0.0 or self.rate_now <= 0.0:
            return
        bits = self.rate_now * dt
        self._fluid_bits += bits
        self._fluid_pkts += bits / (self.wire_bytes * 8.0)

    @property
    def fluid_delivered_packets(self) -> int:
        return int(self._fluid_pkts)

    @property
    def fluid_delivered_bytes(self) -> int:
        return int(self._fluid_bits / 8.0)

    @property
    def sent(self) -> int:
        """Merged offered-packet count across both regimes."""
        return self.expanded_sent + int(self._fluid_pkts)

    @property
    def bytes_sent(self) -> int:
        return self.expanded_bytes + self.fluid_delivered_bytes


class PacketExpander:
    """Materializes real packets from an aggregate's envelope.

    Event-driven like a :class:`~repro.traffic.generators.TrafficSource`,
    but with a *virtual creation clock*: ``created`` stamps advance on
    the source's nominal emission grid (``start``, ``start + gap``, ...)
    while the emission events fire ``upstream_delay_s`` later — the
    analytic serialization + propagation delay of the fluid prefix — and
    inject at the expansion node's ``receive`` exactly where the packets
    would have arrived in a pure-packet run.  Sink-measured delay
    therefore spans the fluid prefix too, and for a CBR aggregate the
    emitted train is *identical* (timing, seq, headers) to the scalar
    source's.

    Packets shells come from the process-wide pool while
    ``repro.traffic.generators.POOLING`` is on, same as scalar sources.
    """

    def __init__(self, agg: FluidAggregate) -> None:
        self.agg = agg
        self.sim = agg.sim
        self._inject: Callable[[Packet], None] | None = None
        self.upstream_delay_s = 0.0
        self._vtime = 0.0
        self._stop_at: float | None = None
        self._running = False

    # ------------------------------------------------------------------
    def target(
        self, inject: Callable[[Packet], None], upstream_delay_s: float
    ) -> None:
        """(Re)point the expander at an injection site.

        ``inject`` is ``host.send`` when expanding at the source, or a
        bound ``node.receive(pkt, ifname)`` wrapper when expanding at an
        interior hop.  Retargeting mid-run keeps the creation clock — the
        offered schedule is a property of the aggregate, not the site.
        """
        self._inject = inject
        self.upstream_delay_s = upstream_delay_s

    def start(self, at: float, stop_at: float | None = None) -> None:
        """(Re)activate; creation clock resumes at ``max(at, clock)``."""
        if self._vtime < at:
            self._vtime = at
        self._stop_at = stop_at
        if not self._running:
            self._running = True
            self._schedule_next()

    def deactivate(self) -> None:
        """Stop emitting (the aggregate went fully fluid or the run ended)."""
        self._running = False

    @property
    def active(self) -> bool:
        return self._running

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        t = self._vtime + self.upstream_delay_s
        now = self.sim.now
        self.sim.schedule(t - now if t > now else 0.0, self._emit)

    def _emit(self) -> None:
        if not self._running:
            return
        agg = self.agg
        vt = self._vtime
        if self._stop_at is not None and vt >= self._stop_at:
            self._running = False
            return
        rate = agg.rate_now
        if rate <= 0.0:
            # Envelope at zero: park.  The router re-arms via start() at
            # the next epoch whose redraw brings the rate back up.
            self._running = False
            return
        header = IPHeader(
            src=agg.src, dst=agg.dst, dscp=agg.dscp, proto=agg.proto,
            src_port=agg.src_port, dst_port=agg.dst_port,
        )
        if _generators.POOLING:
            pkt = POOL.acquire(
                header, agg.payload_bytes, agg.flow, agg.expanded_sent, vt
            )
        else:
            pkt = Packet(
                ip=header, payload_bytes=agg.payload_bytes, flow=agg.flow,
                seq=agg.expanded_sent, created=vt,
            )
        agg.expanded_sent += 1
        agg.expanded_bytes += pkt.wire_bytes
        # Advance the creation clock *before* injecting: forwarding may
        # mutate the packet synchronously (an LSR pushes its label during
        # receive), and the emission grid must use the source wire size —
        # exactly what CbrSource.next_gap charges.
        self._vtime = vt + agg.wire_bytes * 8.0 / rate
        self._inject(pkt)
        self._schedule_next()


#: One directed hop of a fluid path: the egress interface, the link's
#: propagation delay, and the far end (node + arrival ifname).
_Hop = tuple[Interface, float, Any, str]


@dataclass
class FluidPath:
    """One aggregate's routed path plus its current expansion state."""

    agg: FluidAggregate
    hops: list[_Hop]
    src_host: Any
    expand: str = "auto"          # "auto" | "source" | "never"
    expand_at_sink: bool = False  # force real packets at the last hop
    expander: PacketExpander | None = field(default=None, repr=False)
    #: Index of the hop whose queue sees real packets (None = fully fluid).
    exp_index: int | None = None


class FluidRouter:
    """Propagates envelopes along forwarding paths; owns expansion.

    The router is the fluid plane's control loop.  Once per epoch
    (:meth:`repro.sim.engine.Simulator.every`) it:

    1. *accounts* the closing epoch — fully-fluid aggregates integrate
       offered = delivered analytically (and stream the per-aggregate
       deltas into an attached :class:`repro.obs.slo.SloEngine`);
    2. *redraws* each aggregate's envelope from its named RNG stream;
    3. *reprograms* the plane: per-interface committed rates are summed
       over all aggregates' full paths, each aggregate expands at its
       first hop whose committed rate exceeds ``headroom × capacity``
       (conservative: an expanded aggregate's packets load the link just
       the same), fluid-prefix interfaces are charged via
       ``Interface.set_fluid_load`` + the qdisc background hook, and
       expanders are (re)targeted/started/parked.

    Paths are computed from the network graph by metric-weighted
    shortest path — the same criterion SPF uses — so envelopes follow
    the FIB/LFIB paths of the converged network.  ECMP limitation: one
    representative path per aggregate (documented in ARCHITECTURE §12).
    """

    def __init__(
        self,
        net: Any,
        headroom: float = DEFAULT_HEADROOM,
        update_interval_s: float = DEFAULT_UPDATE_S,
    ) -> None:
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        self.net = net
        self.sim: Simulator = net.sim
        self.headroom = headroom
        self.update_interval_s = update_interval_s
        self.paths: list[FluidPath] = []
        self.epochs = 0
        self._periodic: Periodic | None = None
        self._last_t = 0.0
        self._stop_at: float | None = None
        self._started = False
        self._loaded: dict[Interface, float] = {}
        self._graph: nx.Graph | None = None
        self._graph_gen = -1

    # ------------------------------------------------------------------
    def add(
        self,
        agg: FluidAggregate,
        src_host: Any,
        dst_host: Any,
        *,
        expand: str = "auto",
        expand_at_sink: bool = False,
    ) -> FluidPath:
        """Route ``agg`` from ``src_host`` to ``dst_host`` and register it.

        ``expand="source"`` forces full packetization at the source host
        (the aggregate behaves as a real source with fluid accounting
        off); ``"never"`` keeps it fluid end to end regardless of
        congestion (benchmark / capacity-planning mode — real queues
        then only see it as background load).  ``expand_at_sink`` forces
        real packets over the last hop even when uncongested, so a
        :class:`~repro.traffic.sink.FlowSink` at the destination records
        genuine arrivals for measurement aggregates.
        """
        if expand not in ("auto", "source", "never"):
            raise ValueError(f"unknown expand policy {expand!r}")
        if self._graph is None or self._graph_gen != self.net.topology_generation:
            self._graph = self.net.graph()
            self._graph_gen = self.net.topology_generation
        names = nx.shortest_path(
            self._graph, src_host.name, dst_host.name, weight="metric"
        )
        hops: list[_Hop] = []
        for u, v in zip(names, names[1:]):
            dl = self.net.link_between(u, v)
            if dl is None:  # pragma: no cover - graph and links agree
                raise ValueError(f"no link between {u} and {v}")
            if dl.a.name == u:
                hops.append((dl.if_ab, dl.delay_s, dl.b, dl.link_ab.dst_ifname))
            else:
                hops.append((dl.if_ba, dl.delay_s, dl.a, dl.link_ba.dst_ifname))
        path = FluidPath(
            agg=agg, hops=hops, src_host=src_host,
            expand=expand, expand_at_sink=expand_at_sink,
        )
        agg.analytic_delay_s = sum(
            agg.wire_bytes * 8.0 / h[0].rate_bps + h[1] for h in hops
        )
        self.paths.append(path)
        return path

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0, stop_at: float | None = None) -> None:
        """Begin the fluid plane at ``at``; retire it at ``stop_at``."""
        self._stop_at = stop_at
        self.sim.schedule_at(max(at, self.sim.now), self._begin)

    def stop(self) -> None:
        """Retire the plane: final accounting, uncharge links, park expanders.

        Expanders with a creation clock still short of ``stop_at`` finish
        their in-flight tail (packets *created* before the stop must
        still arrive); everything else stops here.
        """
        if not self._started:
            return
        self._account(self.sim.now)
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None
        for iface in self._loaded:
            iface.set_fluid_load(0.0)
            iface.qdisc.set_fluid_background(0, 0)
        self._loaded = {}
        if self._stop_at is None:
            for path in self.paths:
                if path.expander is not None:
                    path.expander.deactivate()
        self._started = False

    def _begin(self) -> None:
        self._started = True
        self._last_t = self.sim.now
        for path in self.paths:
            path.agg.update_envelope()
        self._reprogram()
        self._periodic = self.sim.every(self.update_interval_s, self._epoch)
        if self._stop_at is not None:
            self.sim.schedule_at(self._stop_at, self.stop)

    def _epoch(self) -> None:
        now = self.sim.now
        if self._stop_at is not None and now >= self._stop_at:
            return  # the stop() event owns the final accounting
        self._account(now)
        for path in self.paths:
            path.agg.update_envelope()
        self._reprogram()
        self.epochs += 1

    # ------------------------------------------------------------------
    def _account(self, now: float) -> None:
        dt = now - self._last_t
        self._last_t = now
        if dt <= 0.0:
            return
        slo = getattr(self.net.trace, "slo", None)
        for path in self.paths:
            if path.exp_index is not None:
                continue  # expanded: the real packets carry the counts
            agg = path.agg
            agg.account_fluid(dt)
            if slo is not None:
                delta = int(agg._fluid_pkts) - agg._slo_reported
                if delta > 0:
                    agg._slo_reported += delta
                    slo.account_fluid(
                        agg.flow,
                        packets=delta,
                        bytes_=delta * agg.wire_bytes,
                        delay_s=agg.analytic_delay_s,
                        now=now,
                    )

    def _reprogram(self) -> None:
        headroom = self.headroom
        # Pass 1: committed rate per interface over *all* aggregates'
        # full paths — conservative, since expansion does not reduce the
        # load a link carries, only whether it is analytic or real.
        committed: dict[Interface, float] = {}
        for path in self.paths:
            rate = path.agg.rate_now
            if rate <= 0.0:
                continue
            for hop in path.hops:
                iface = hop[0]
                committed[iface] = committed.get(iface, 0.0) + rate
        # Pass 2: per-aggregate expansion point + fluid-prefix charging.
        loads: dict[Interface, float] = {}
        wire_w: dict[Interface, float] = {}
        for path in self.paths:
            agg = path.agg
            hops = path.hops
            if path.expand == "source":
                j: int | None = 0
            elif path.expand == "never":
                j = None
            else:
                j = None
                for i, hop in enumerate(hops):
                    iface = hop[0]
                    if committed.get(iface, 0.0) > headroom * iface.rate_bps:
                        j = i
                        break
                if j is None and path.expand_at_sink:
                    j = len(hops) - 1
            rate = agg.rate_now
            if rate > 0.0:
                prefix = len(hops) if j is None else j
                for hop in hops[:prefix]:
                    iface = hop[0]
                    loads[iface] = loads.get(iface, 0.0) + rate
                    wire_w[iface] = wire_w.get(iface, 0.0) + rate * agg.wire_bytes
            self._set_expansion(path, j)
        # Apply the new charges; uncharge interfaces that lost theirs.
        for iface, bps in loads.items():
            rho = min(bps / iface.rate_bps, headroom)
            # M/M/1-shaped standing-backlog estimate at the rate-weighted
            # mean packet size: what the AQM on that egress should "see".
            standing = int(rho / (1.0 - rho) * (wire_w[iface] / bps))
            iface.set_fluid_load(bps)
            iface.qdisc.set_fluid_background(bps, standing)
        for iface in self._loaded:
            if iface not in loads:
                iface.set_fluid_load(0.0)
                iface.qdisc.set_fluid_background(0, 0)
        self._loaded = loads

    def _set_expansion(self, path: FluidPath, j: int | None) -> None:
        if j is None:
            if path.expander is not None:
                path.expander.deactivate()
            path.exp_index = None
            return
        agg = path.agg
        exp = path.expander
        if exp is None:
            exp = path.expander = PacketExpander(agg)
        if path.exp_index != j or exp._inject is None:
            hops = path.hops
            if j == 0:
                exp.target(path.src_host.send, 0.0)
            else:
                upstream = sum(
                    agg.wire_bytes * 8.0 / h[0].rate_bps + h[1]
                    for h in hops[:j]
                )
                _iface, _delay, node, ifname = hops[j - 1]
                receive = node.receive
                exp.target(
                    lambda pkt, _rx=receive, _if=ifname: _rx(pkt, _if), upstream
                )
            path.exp_index = j
        if not exp.active and agg.rate_now > 0.0:
            exp.start(self.sim.now, self._stop_at)

    # ------------------------------------------------------------------
    def utilization_bps(self, iface: Interface) -> float:
        """Current fluid charge on ``iface`` (0.0 when uncharged)."""
        return self._loaded.get(iface, 0.0)

    def summary(self) -> dict[str, Any]:
        """JSON-able state: per-aggregate counters + plane totals."""
        return {
            "headroom": self.headroom,
            "update_interval_s": self.update_interval_s,
            "epochs": self.epochs,
            "aggregates": [
                {
                    "flow": str(p.agg.flow),
                    "kind": p.agg.kind,
                    "n_flows": p.agg.n_flows,
                    "offered_rate_bps": p.agg.offered_rate_bps,
                    "expansion_hop": p.exp_index,
                    "fluid_packets": p.agg.fluid_delivered_packets,
                    "expanded_packets": p.agg.expanded_sent,
                }
                for p in self.paths
            ],
        }
