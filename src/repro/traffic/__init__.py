"""Traffic generation and collection."""

from repro.traffic.elastic import ElasticSource
from repro.traffic.fluid import (
    FluidAggregate,
    FluidPath,
    FluidRouter,
    PacketExpander,
)
from repro.traffic.generators import (
    CbrSource,
    OnOffSource,
    ParetoOnOffSource,
    PoissonSource,
    TrafficSource,
    voice_source,
)
from repro.traffic.sink import FlowRecord, FlowSink

__all__ = [
    "CbrSource", "OnOffSource", "ParetoOnOffSource", "PoissonSource",
    "TrafficSource", "voice_source", "FlowRecord", "FlowSink",
    "ElasticSource",
    "FluidAggregate", "FluidPath", "FluidRouter", "PacketExpander",
]
