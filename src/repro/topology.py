"""Network container and topology builders.

:class:`Network` owns the simulator, the nodes, and the duplex links, and
provides the wiring helpers every experiment uses: create routers/LSRs/
hosts, connect them with rate+delay+metric links, export a ``networkx``
graph for the control-plane computations (SPF, CSPF), and collect link
utilization at the end of a run.

Topology builders at the bottom create the recurring shapes of the
evaluation: a line, a star, the classic *fish* traffic-engineering
topology, and a 12-node reference ISP backbone modeled on the two-level
(core + POP) structure the paper's Fig. 4 sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import networkx as nx

from repro.net.address import IPv4Address, Prefix
from repro.net.link import Interface, Link
from repro.net.node import Host, Node
from repro.qos.queues import DropTailFifo, QueueDiscipline
from repro.routing.router import Router
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.trace import Counter, TraceBus

__all__ = [
    "DuplexLink",
    "Network",
    "build_line",
    "build_star",
    "build_full_mesh",
    "build_fish",
    "attach_host",
    "build_waxman",
    "build_backbone",
]

QdiscFactory = Callable[[Node, str], QueueDiscipline]


def _default_qdisc(node: Node, ifname: str) -> QueueDiscipline:
    return DropTailFifo(capacity_packets=100)


@dataclass
class DuplexLink:
    """Bookkeeping record for one bidirectional connection.

    ``addr_a``/``addr_b`` and the ``egress_*`` pairs are precomputed by
    :meth:`Network.connect` so the control plane resolves a next hop with
    one attribute read instead of scanning the peer's address table;
    ``net`` points back at the owning network so :meth:`set_up` can bump
    its topology generation (link state is part of the IGP topology).

    Invariant: every routing-relevant mutation must bump the owning
    network's ``topology_generation``, or cached domain views go stale.
    The writable surfaces are guarded — ``metric`` is a property that
    bumps on rewrite, and direct ``link_ab.up`` / ``link_ba.up`` writes
    bump through the :class:`~repro.net.link.Link` state-change hook
    :meth:`Network.connect` wires — so callers may mutate them directly
    instead of going through :meth:`set_up`.
    """

    a: Node
    b: Node
    if_ab: Interface
    if_ba: Interface
    link_ab: Link
    link_ba: Link
    rate_bps: float
    delay_s: float
    metric: float
    addr_a: IPv4Address | None = None
    addr_b: IPv4Address | None = None
    egress_a: tuple[str, IPv4Address] | None = None  # a's (out_if, next hop)
    egress_b: tuple[str, IPv4Address] | None = None  # b's (out_if, next hop)
    net: "Network | None" = None

    def set_up(self, up: bool) -> None:
        """Raise/fail both directions (simulates a link cut)."""
        self.link_ab.up = up
        self.link_ba.up = up
        if self.net is not None:
            self.net.topology_generation += 1

    def utilization(self, elapsed: float) -> tuple[float, float]:
        """(a→b, b→a) transmitter utilization over ``elapsed`` seconds."""
        return (
            self.if_ab.stats.utilization(elapsed),
            self.if_ba.stats.utilization(elapsed),
        )


def _dl_metric_get(self: DuplexLink) -> float:
    return self._metric


def _dl_metric_set(self: DuplexLink, value: float) -> None:
    changed = getattr(self, "_metric", value) != value
    self._metric = value
    if changed:
        net = getattr(self, "net", None)
        if net is not None:
            net.topology_generation += 1


# ``metric`` is IGP state, so rewriting it must invalidate cached domain
# views exactly like a link up/down.  The property is installed after the
# dataclass machinery has generated ``__init__`` (a ``metric = property()``
# line in the class body would read as a field default); the __init__
# assignment itself runs before ``self.net`` exists and never bumps.
DuplexLink.metric = property(_dl_metric_get, _dl_metric_set)  # type: ignore[assignment]


class Network:
    """A simulated network: kernel + nodes + links + address plan.

    Infrastructure addressing is automatic: loopbacks from 172.16.0.0/16
    (one /32 per node) and point-to-point /30s from 192.168.0.0/16.  The
    10.0.0.0/8 space is deliberately left to *customers*, so VPN experiments
    can use overlapping 10/8 plans without colliding with the provider.
    """

    LOOPBACK_POOL = Prefix.parse("172.16.0.0/16")
    LINKNET_POOL = Prefix.parse("192.168.0.0/16")

    def __init__(self, seed: int = 0) -> None:
        self.sim = Simulator()
        self.trace = TraceBus()
        self.streams = RandomStreams(seed)
        self.counters = Counter()
        self.nodes: dict[str, Node] = {}
        self.duplex_links: list[DuplexLink] = []
        self.default_qdisc_factory: QdiscFactory = _default_qdisc
        # Structural version of the routing topology (nodes, links, link
        # state).  The control plane caches its domain views behind this
        # counter — the GenCache pattern from ``repro.dataplane.caches``.
        self.topology_generation = 0
        self._domain_views: dict = {}
        self._spf_state: dict = {}
        # Observability attachment points: extra link state-change
        # listeners (each called with the simplex Link that changed) and
        # the convergence tracer the control-plane hook sites notify.
        # Both default empty/None so unobserved networks pay nothing.
        self.link_listeners: list[Callable[[Link], None]] = []
        self.convergence_tracer = None
        # Address allocators are plain integer cursors, not live iterators:
        # the network must serialize (repro.sim.snapshot pickles the whole
        # object graph) and a half-consumed generator cannot.
        self._next_loopback = 1
        self._next_linknet = 0
        # ``None`` unless the process-wide telemetry switch is on (see
        # repro.obs.runtime); imported late so repro.topology stays importable
        # without pulling the whole observability stack into every user.
        from repro.obs.runtime import attach_if_enabled, vector_mode_enabled

        self.telemetry = attach_if_enabled(self)
        # Vector fast path (default on): fuse same-time arrivals at one
        # node into a receive_batch vector.  Observationally identical to
        # scalar dispatch; repro.obs.runtime.set_vector_mode(False) forces
        # the scalar parity oracle for networks built afterwards.
        if vector_mode_enabled():
            from repro.net.node import install_vector_dispatch

            install_vector_dispatch(self.sim)

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node: Node, loopback: bool = True) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.trace = self.trace
        self.topology_generation += 1
        if loopback and node.loopback is None:
            node.set_loopback(self._alloc_loopback())
        return node

    def _alloc_loopback(self) -> IPv4Address:
        """Next free loopback /32 (resumable: a restored network keeps
        allocating where the snapshotted one stopped)."""
        n = self._next_loopback
        if n >= self.LOOPBACK_POOL.num_addresses - 1:
            raise ValueError("loopback pool exhausted")
        self._next_loopback = n + 1
        return self.LOOPBACK_POOL.host(n)

    def _alloc_linknet(self) -> Prefix:
        """Next free point-to-point /30 out of the linknet pool."""
        step = 1 << 2  # /30
        base = self.LINKNET_POOL.network + self._next_linknet * step
        if base >= self.LINKNET_POOL.network + self.LINKNET_POOL.num_addresses:
            raise ValueError("linknet pool exhausted")
        self._next_linknet += 1
        return Prefix(base, 30)

    def add_router(self, name: str, **kw) -> Router:
        return self.add_node(Router(self.sim, name, **kw))  # type: ignore[return-value]

    def add_host(self, name: str, **kw) -> Host:
        return self.add_node(Host(self.sim, name, **kw), loopback=False)  # type: ignore[return-value]

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def routers(self) -> list[Router]:
        """All nodes with a FIB (plain routers, LSRs, PEs)."""
        return [n for n in self.nodes.values() if isinstance(n, Router)]

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(
        self,
        a: Node | str,
        b: Node | str,
        rate_bps: float = 10e6,
        delay_s: float = 1e-3,
        metric: float = 1.0,
        qdisc_factory: QdiscFactory | None = None,
    ) -> DuplexLink:
        """Create a duplex link between ``a`` and ``b``.

        Each direction gets its own interface (named ``to-<peer>``), queue
        discipline, and simplex :class:`Link`.  A fresh /30 subnet is
        assigned so routed next hops resolve to real addresses.
        """
        na = self.nodes[a] if isinstance(a, str) else a
        nb = self.nodes[b] if isinstance(b, str) else b
        factory = qdisc_factory or self.default_qdisc_factory

        if_ab_name = self._ifname(na, nb)
        if_ba_name = self._ifname(nb, na)
        if_ab = Interface(self.sim, na, if_ab_name, rate_bps, factory(na, if_ab_name))
        if_ba = Interface(self.sim, nb, if_ba_name, rate_bps, factory(nb, if_ba_name))
        na.add_interface(if_ab)
        nb.add_interface(if_ba)

        subnet = self._alloc_linknet()
        addr_a, addr_b = subnet.host(1), subnet.host(2)
        na.add_address(addr_a, if_ab_name, subnet)
        nb.add_address(addr_b, if_ba_name, subnet)

        link_ab = Link(self.sim, f"{na.name}->{nb.name}", nb, if_ba_name, delay_s)
        link_ba = Link(self.sim, f"{nb.name}->{na.name}", na, if_ab_name, delay_s)
        link_ab.on_state_change = link_ba.on_state_change = self._link_state_changed
        if_ab.attach(link_ab, nb, if_ba_name)
        if_ba.attach(link_ba, na, if_ab_name)

        dl = DuplexLink(
            na, nb, if_ab, if_ba, link_ab, link_ba, rate_bps, delay_s, metric,
            addr_a=addr_a, addr_b=addr_b,
            egress_a=(if_ab_name, addr_b), egress_b=(if_ba_name, addr_a),
            net=self,
        )
        self.duplex_links.append(dl)
        self.topology_generation += 1
        return dl

    @staticmethod
    def _ifname(node: Node, peer: Node) -> str:
        base = f"to-{peer.name}"
        name = base
        n = 2
        while name in node.interfaces:
            name = f"{base}.{n}"
            n += 1
        return name

    def _bump_topology(self) -> None:
        """Invalidate cached domain views / SPF state after a structural
        change."""
        self.topology_generation += 1

    def _link_state_changed(self, link: Link) -> None:
        """Link up-state hook (wired into every Link by :meth:`connect`):
        bump the topology generation and fan out to observers."""
        self.topology_generation += 1
        for fn in self.link_listeners:
            fn(link)

    def link_between(self, a: str, b: str) -> Optional[DuplexLink]:
        """First duplex link between the two named nodes, if any."""
        for dl in self.duplex_links:
            if {dl.a.name, dl.b.name} == {a, b}:
                return dl
        return None

    # ------------------------------------------------------------------
    # Graph export & reporting
    # ------------------------------------------------------------------
    def domain_view(self, domain: str = "core"):
        """Cached indexed snapshot of one routing domain (see ``spf_core``).

        Rebuilt when ``topology_generation`` moves *or* the domain's
        membership changes — ``node.domain`` reassignment (the inter-AS
        experiments do this) doesn't bump the counter, so membership is
        re-derived on every call; that scan is O(nodes), dwarfed by any
        SPF the caller is about to run.
        """
        from repro.routing.spf_core import DomainView

        members = [
            name for name, node in self.nodes.items()
            if isinstance(node, Router) and node.domain == domain
        ]
        view = self._domain_views.get(domain)
        if (
            view is not None
            and view.generation == self.topology_generation
            and view.order_names == members
        ):
            return view
        view = DomainView.build(self, domain, members)
        self._domain_views[domain] = view
        return view

    def graph(self, routers_only: bool = False) -> nx.Graph:
        """Undirected topology graph with metric/rate/delay edge attributes."""
        g = nx.Graph()
        for name, node in self.nodes.items():
            if routers_only and not isinstance(node, Router):
                continue
            g.add_node(name, node=node)
        for dl in self.duplex_links:
            if dl.a.name in g and dl.b.name in g:
                g.add_edge(
                    dl.a.name,
                    dl.b.name,
                    metric=dl.metric,
                    rate_bps=dl.rate_bps,
                    delay_s=dl.delay_s,
                    duplex=dl,
                )
        return g

    def run(self, until: float) -> float:
        """Run the simulation to ``until`` seconds."""
        return self.sim.run(until=until)

    def link_utilization(self, elapsed: float) -> dict[str, float]:
        """Per-direction transmitter utilization ``{"A->B": frac, ...}``."""
        out: dict[str, float] = {}
        for dl in self.duplex_links:
            ua, ub = dl.utilization(elapsed)
            out[f"{dl.a.name}->{dl.b.name}"] = ua
            out[f"{dl.b.name}->{dl.a.name}"] = ub
        return out

    def total_drops(self) -> int:
        """All queue + conditioner drops across every interface."""
        return sum(
            i.stats.dropped + i.stats.conditioner_dropped
            for n in self.nodes.values()
            for i in n.interfaces.values()
        )


def attach_host(
    net: Network,
    router: Node,
    addr: str,
    name: str | None = None,
    rate_bps: float = 100e6,
    delay_s: float = 0.1e-3,
    advertise: bool = True,
) -> Host:
    """Create a host with address ``addr`` behind ``router``, fully wired.

    Installs the router's host route, the host's gateway, and (optionally)
    injects the /32 into the IGP so every core router can reach it after
    :func:`repro.routing.spf.converge`.
    """
    from repro.net.address import IPv4Address, Prefix
    from repro.routing.fib import RouteEntry
    from repro.routing.router import Router as _Router

    if isinstance(router, str):
        # connect() resolves names too, but the route installation below
        # needs the node object — a bare name would silently skip it and
        # leave the host unreachable.
        router = net.nodes[router]
    host = net.add_host(name or f"h-{addr.replace('.', '-')}")
    dl = net.connect(host, router, rate_bps, delay_s)
    host.gateway_ifname = dl.if_ab.name
    a = IPv4Address.parse(addr)
    host.add_address(a, dl.if_ab.name)
    host.set_loopback(a)
    if isinstance(router, _Router):
        # Register the host /32 as a *connected* prefix so reconvergence
        # after a failure reinstalls it (clear_routes flushes the FIB).
        router.connected_prefixes[Prefix.of(a, 32)] = dl.if_ba.name
        router.fib.install(
            Prefix.of(a, 32), RouteEntry(dl.if_ba.name, None, source="connected")
        )
        if advertise:
            router.advertised_prefixes.add(Prefix.of(a, 32))
    return host


# ---------------------------------------------------------------------------
# Topology builders
# ---------------------------------------------------------------------------

def build_line(
    net: Network, n: int, prefix: str = "r", rate_bps: float = 10e6, delay_s: float = 1e-3
) -> list[Router]:
    """``r0 - r1 - ... - r{n-1}`` chain of routers."""
    routers = [net.add_router(f"{prefix}{i}") for i in range(n)]
    for i in range(n - 1):
        net.connect(routers[i], routers[i + 1], rate_bps, delay_s)
    return routers


def build_star(
    net: Network, n_leaves: int, rate_bps: float = 10e6, delay_s: float = 1e-3
) -> tuple[Router, list[Router]]:
    """Hub router with ``n_leaves`` spokes (the paper's small-WAN case)."""
    hub = net.add_router("hub")
    leaves = [net.add_router(f"leaf{i}") for i in range(n_leaves)]
    for leaf in leaves:
        net.connect(hub, leaf, rate_bps, delay_s)
    return hub, leaves


def build_full_mesh(
    net: Network, n: int, prefix: str = "m", rate_bps: float = 10e6, delay_s: float = 1e-3
) -> list[Router]:
    """Complete graph on ``n`` routers — the O(N²) shape of claim C1."""
    routers = [net.add_router(f"{prefix}{i}") for i in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            net.connect(routers[i], routers[j], rate_bps, delay_s)
    return routers


def build_fish(
    net: Network,
    rate_bps: float = 10e6,
    slow_rate_bps: float | None = None,
    trunk_rate_bps: float | None = None,
    delay_s: float = 1e-3,
    node_factory: Callable[[Network, str], Router] | None = None,
) -> dict[str, Router]:
    """The classic traffic-engineering "fish".

    ::

              C --- D
             /       \\
        A - B         E - F
             \\       /
              G --- H

    Both branches are three links, but the top branch carries metric 2 per
    link so *all* shortest-path traffic piles onto the bottom (B-G-H-E) —
    the congestion CSPF then relieves by placing overflow tunnels on the
    top branch (E6).
    """
    make = node_factory or (lambda n, name: n.add_router(name))
    names = ["A", "B", "C", "D", "E", "F", "G", "H"]
    nodes = {name: make(net, name) for name in names}
    slow = slow_rate_bps if slow_rate_bps is not None else rate_bps
    trunk = trunk_rate_bps if trunk_rate_bps is not None else rate_bps
    net.connect(nodes["A"], nodes["B"], trunk, delay_s)               # head trunk
    net.connect(nodes["B"], nodes["C"], rate_bps, delay_s, metric=2)  # top branch
    net.connect(nodes["C"], nodes["D"], rate_bps, delay_s, metric=2)
    net.connect(nodes["D"], nodes["E"], rate_bps, delay_s, metric=2)
    net.connect(nodes["B"], nodes["G"], slow, delay_s)                # bottom branch
    net.connect(nodes["G"], nodes["H"], slow, delay_s)
    net.connect(nodes["H"], nodes["E"], slow, delay_s)
    net.connect(nodes["E"], nodes["F"], trunk, delay_s)               # tail trunk
    return nodes


def build_waxman(
    net: Network,
    n: int,
    alpha: float = 0.4,
    beta: float = 0.4,
    rate_bps: float = 10e6,
    delay_per_unit_s: float = 5e-3,
    prefix: str = "w",
    node_factory: Callable[[Network, str], Router] | None = None,
    rng=None,
) -> list[Router]:
    """Waxman random graph: the standard synthetic ISP topology model.

    Nodes scatter uniformly on the unit square; an edge (u, v) exists with
    probability ``alpha * exp(-d(u,v) / (beta * sqrt(2)))``.  Link
    propagation delay scales with Euclidean distance.  A spanning chain is
    added first so the result is always connected (common practice —
    disconnected samples are useless for routing studies).

    ``rng`` defaults to the network's "topology.waxman" stream.
    """
    import math

    if not 0 < alpha <= 1 or beta <= 0:
        raise ValueError("need 0 < alpha <= 1 and beta > 0")
    make = node_factory or (lambda nn, name: nn.add_router(name))
    gen = rng if rng is not None else net.streams.stream("topology.waxman")
    routers = [make(net, f"{prefix}{i}") for i in range(n)]
    xy = gen.random((n, 2))
    max_d = math.sqrt(2.0)

    def connect(i: int, j: int) -> None:
        d = float(math.dist(xy[i], xy[j]))
        net.connect(routers[i], routers[j], rate_bps,
                    max(1e-4, d * delay_per_unit_s))

    for i in range(n - 1):          # connectivity backbone
        connect(i, i + 1)
    for i in range(n):
        for j in range(i + 2, n):   # chain already covers j == i+1
            d = float(math.dist(xy[i], xy[j]))
            if gen.random() < alpha * math.exp(-d / (beta * max_d)):
                connect(i, j)
    return routers


#: Adjacency of the 12-node reference backbone: 4 fully-meshed core routers
#: (P1..P4) and 8 POP edge routers, two per core, dual-homed for resilience.
BACKBONE_EDGES: tuple[tuple[str, str], ...] = (
    ("P1", "P2"), ("P1", "P3"), ("P1", "P4"), ("P2", "P3"), ("P2", "P4"), ("P3", "P4"),
    ("E1", "P1"), ("E1", "P2"), ("E2", "P1"), ("E2", "P3"),
    ("E3", "P2"), ("E3", "P4"), ("E4", "P2"), ("E4", "P1"),
    ("E5", "P3"), ("E5", "P1"), ("E6", "P3"), ("E6", "P4"),
    ("E7", "P4"), ("E7", "P2"), ("E8", "P4"), ("E8", "P3"),
)


def build_backbone(
    net: Network,
    core_rate_bps: float = 45e6,     # DS3-class trunks of the era
    edge_rate_bps: float = 10e6,
    delay_s: float = 2e-3,
    node_factory: Callable[[Network, str], Router] | None = None,
) -> dict[str, Router]:
    """12-node two-level reference ISP backbone (Fig. 4's deployment target).

    Core links run at ``core_rate_bps``, edge-to-core links at
    ``edge_rate_bps``.  Returns name → router.
    """
    make = node_factory or (lambda n, name: n.add_router(name))
    names = [f"P{i}" for i in range(1, 5)] + [f"E{i}" for i in range(1, 9)]
    nodes = {name: make(net, name) for name in names}
    for a, b in BACKBONE_EDGES:
        core = a.startswith("P") and b.startswith("P")
        rate = core_rate_bps if core else edge_rate_bps
        net.connect(nodes[a], nodes[b], rate, delay_s)
    return nodes
