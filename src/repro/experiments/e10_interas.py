"""E10 — Cross-provider VPN with end-to-end QoS (option A interconnect).

The paper's §5: "This cross-network SLA capability allows the building of
VPNs using multiple carriers as necessary, an option not available with
most frame relay offerings."  We build two independent providers — their
own IGPs, LDP meshes, and iBGP systems — joined by an option-A ASBR pair,
provision one customer with a site in each, and check:

* **reachability** across the border (and its control-plane cost);
* **end-to-end QoS**: the voice class keeps its SLA across *both*
  backbones and the interconnect, because each provider independently maps
  the (cleartext) customer DSCP into its own EXP bits at its edge;
* **isolation**: a second customer on the same interconnect stays sealed.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun, make_qdisc_factory
from repro.metrics.sla import VOICE_SLA, evaluate
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.qos.dscp import DSCP
from repro.routing.spf import converge
from repro.topology import Network
from repro.traffic.generators import CbrSource, voice_source
from repro.vpn.bgp import MpBgp
from repro.vpn.interas import connect_option_a, exchange_option_a
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner

__all__ = ["build_two_providers", "run_e10"]

CORE_BPS = 10e6


def build_two_providers(seed: int = 101, qos: bool = True) -> dict[str, Any]:
    """Two 3-node providers (PE - P - ASBR) joined by option-A circuits."""
    net = Network(seed=seed)
    if qos:
        net.default_qdisc_factory = make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))

    nodes: dict[str, Lsr] = {}
    for dom, tag in (("core-a", "a"), ("core-b", "b")):
        pe = net.add_node(PeRouter(net.sim, f"pe-{tag}"))
        p = net.add_node(Lsr(net.sim, f"p-{tag}"))
        asbr = net.add_node(PeRouter(net.sim, f"asbr-{tag}"))
        for n in (pe, p, asbr):
            n.domain = dom
            nodes[n.name] = n
        net.connect(pe, p, CORE_BPS, 1e-3)
        net.connect(p, asbr, CORE_BPS, 1e-3)

    # Each provider provisions its half of the customer(s) with its own
    # RD/RT numbering (separate provisioners = separate ASNs).
    prov_a = VpnProvisioner(net, asn=64500, access_rate_bps=CORE_BPS)
    prov_b = VpnProvisioner(net, asn=64510, access_rate_bps=CORE_BPS)
    corp_a = prov_a.create_vpn("corp")
    corp_b = prov_b.create_vpn("corp")
    other_a = prov_a.create_vpn("other")
    other_b = prov_b.create_vpn("other")
    site_a = prov_a.add_site(corp_a, nodes["pe-a"], prefix="10.1.0.0/24")  # type: ignore[arg-type]
    site_b = prov_b.add_site(corp_b, nodes["pe-b"], prefix="10.2.0.0/24")  # type: ignore[arg-type]
    o_a = prov_a.add_site(other_a, nodes["pe-a"], prefix="10.1.0.0/24")    # type: ignore[arg-type]
    o_b = prov_b.add_site(other_b, nodes["pe-b"], prefix="10.9.0.0/24")    # type: ignore[arg-type]

    # ASBR VRFs (each provider's own policy) + per-VPN circuits.
    asbr_a, asbr_b = nodes["asbr-a"], nodes["asbr-b"]
    assert isinstance(asbr_a, PeRouter) and isinstance(asbr_b, PeRouter)
    asbr_a.add_vrf("corp", corp_a.rd, {corp_a.rt}, {corp_a.rt})
    asbr_b.add_vrf("corp", corp_b.rd, {corp_b.rt}, {corp_b.rt})
    asbr_a.add_vrf("other", other_a.rd, {other_a.rt}, {other_a.rt})
    asbr_b.add_vrf("other", other_b.rd, {other_b.rt}, {other_b.rt})
    corp_circuit = connect_option_a(net, asbr_a, asbr_b, "corp", CORE_BPS)
    other_circuit = connect_option_a(net, asbr_a, asbr_b, "other", CORE_BPS)

    # Control plane, per the option-A call order.
    for dom in ("core-a", "core-b"):
        converge(net, domain=dom)
        run_ldp(net, domain=dom)
    bgp_a = MpBgp(net, [nodes["pe-a"], asbr_a])  # type: ignore[list-item]
    bgp_b = MpBgp(net, [nodes["pe-b"], asbr_b])  # type: ignore[list-item]
    bgp_a.converge()
    bgp_b.converge()
    exchanged = exchange_option_a(net, corp_circuit)
    exchanged += exchange_option_a(net, other_circuit)
    result_a = bgp_a.converge()
    result_b = bgp_b.converge()

    return {
        "net": net, "nodes": nodes,
        "site_a": site_a, "site_b": site_b, "o_a": o_a, "o_b": o_b,
        "routes_exchanged": exchanged,
        "ibgp_updates": result_a.updates_sent + result_b.updates_sent,
        "corp_circuit": corp_circuit,
    }


def run_e10(seed: int = 101, measure_s: float = 6.0) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E10 table: cross-provider QoS + isolation + control-plane cost."""
    ctx = build_two_providers(seed=seed, qos=True)
    net = ctx["net"]
    h_a = ctx["site_a"].hosts[0]
    h_b = ctx["site_b"].hosts[0]
    o_b_host = ctx["o_b"].hosts[0]

    run = ExperimentRun(net, warmup_s=0.3, measure_s=measure_s)
    sink = run.sink_at(h_b)
    other_sink = run.sink_at(o_b_host)

    voice = run.add_source(
        voice_source(net.sim, h_a.send, "voice", str(h_a.loopback), str(h_b.loopback))
    )
    bulk = run.add_source(
        CbrSource(
            net.sim, h_a.send, "bulk", str(h_a.loopback), str(h_b.loopback),
            payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=12e6,
        )
    )
    run.execute(drain_s=0.5)

    voice_stats = run.stats_for(voice, sink)
    bulk_stats = run.stats_for(bulk, sink)
    verdict = evaluate(VOICE_SLA, voice_stats)
    cross_leak = other_sink.received("voice") + other_sink.received("bulk")
    rows = [
        {"flow": "voice (A→B cross-provider)", **voice_stats.row(),
         "sla": "PASS" if verdict.conformant else "FAIL"},
        {"flow": "bulk (A→B cross-provider)", **bulk_stats.row(), "sla": "n/a"},
    ]
    summary = {
        "routes_exchanged_over_border": ctx["routes_exchanged"],
        "ebgp_updates": net.counters["interas.ebgp_updates"],
        "cross_customer_leaks": cross_leak,
        "voice_sla": verdict,
        "voice": voice_stats,
        "bulk": bulk_stats,
        "ctx": ctx,
    }
    return rows, summary
