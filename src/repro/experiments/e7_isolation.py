"""E7 — VPN isolation with overlapping address spaces, and extranets.

Claim C5 (§4): identifiers "allow a single routing system to support
multiple VPNs whose internal address spaces overlap with each other", and
"data traffic from different VPNs is kept separate".  We provision two
VPNs with *byte-identical* 10.0.x.0/24 address plans on the *same* pair of
PEs, blast traffic inside each, and count: intra-VPN deliveries (must be
100 %), cross-VPN deliveries (must be exactly zero — the destination
address exists in both VPNs, so any confusion would deliver somewhere).

The extranet variant then shows that sharing is a *policy* decision, not
an accident: a third VPN imports the first VPN's route target and gains
reachability to it — while the second VPN, still disjoint, stays sealed.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.routing.spf import converge
from repro.topology import Network, build_backbone
from repro.traffic.generators import CbrSource
from repro.traffic.sink import FlowSink
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner

__all__ = ["build_overlap_scenario", "run_e7"]


def build_overlap_scenario(seed: int = 61, extranet: bool = False) -> dict[str, Any]:
    """Two (plus optionally a third) VPNs with identical address plans."""
    net = Network(seed=seed)

    def factory(n: Network, name: str):
        cls = PeRouter if name.startswith("E") else Lsr
        return n.add_node(cls(n.sim, name))

    nodes = build_backbone(net, node_factory=factory)
    prov = VpnProvisioner(net)

    red = prov.create_vpn("red")
    blue = prov.create_vpn("blue")
    # Identical plans: site 1 = 10.0.1.0/24 on E1, site 2 = 10.0.2.0/24 on E8.
    sites = {}
    for vpn in (red, blue):
        sites[vpn.name, 1] = prov.add_site(vpn, nodes["E1"], prefix="10.0.1.0/24")
        sites[vpn.name, 2] = prov.add_site(vpn, nodes["E8"], prefix="10.0.2.0/24")

    green = None
    if extranet:
        green = prov.create_vpn("green")
        sites["green", 1] = prov.add_site(green, nodes["E4"], prefix="10.7.1.0/24")
        # Extranet policy: green additionally imports red's RT (one-way
        # visibility is enough to prove the point; symmetric import lets
        # red answer).
        for pe in prov.pes():
            if "green" in pe.vrfs:
                vrf = pe.vrfs["green"]
                vrf.import_rts = frozenset(vrf.import_rts | {red.rt})
            if "red" in pe.vrfs:
                vrf = pe.vrfs["red"]
                vrf.import_rts = frozenset(vrf.import_rts | {green.rt})

    converge(net)
    run_ldp(net)
    prov.converge_bgp()
    return {"net": net, "prov": prov, "sites": sites, "red": red, "blue": blue, "green": green}


def run_e7(
    seed: int = 61, measure_s: float = 3.0
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E7 table: per-VPN delivery / leak counts + extranet reachability."""
    ctx = build_overlap_scenario(seed, extranet=True)
    net = ctx["net"]
    sites = ctx["sites"]

    run = ExperimentRun(net, warmup_s=0.1, measure_s=measure_s)
    sinks: dict[str, FlowSink] = {}
    sources = {}
    # Within each of red/blue: site1 host -> the (shared!) 10.0.2.0/24 host
    # address.  The flow names differ, so a mis-delivered packet shows up in
    # the other VPN's sink under a foreign flow name.
    for vpn_name in ("red", "blue"):
        s1, s2 = sites[vpn_name, 1], sites[vpn_name, 2]
        h1, h2 = s1.hosts[0], s2.hosts[0]
        sinks[vpn_name] = run.sink_at(h2)
        sources[vpn_name] = run.add_source(
            CbrSource(
                net.sim, h1.send, f"{vpn_name}-flow",
                str(h1.loopback), str(h2.loopback),
                payload_bytes=400, rate_bps=1e6,
            )
        )
    # Extranet: green reaches a red destination.
    g1 = sites["green", 1].hosts[0]
    red_dst = sites["red", 2].hosts[0]
    sources["green"] = run.add_source(
        CbrSource(
            net.sim, g1.send, "green-to-red",
            str(g1.loopback), str(red_dst.loopback),
            payload_bytes=400, rate_bps=0.5e6,
        )
    )
    run.execute(drain_s=0.5)

    rows: list[dict[str, Any]] = []
    red_sink, blue_sink = sinks["red"], sinks["blue"]
    cross = {
        "red": blue_sink.received("red-flow"),
        "blue": red_sink.received("blue-flow"),
    }
    for vpn_name in ("red", "blue"):
        src = sources[vpn_name]
        own = sinks[vpn_name].received(f"{vpn_name}-flow")
        rows.append(
            {
                "vpn": vpn_name,
                "sent": src.sent,
                "delivered_intra": own,
                "delivered_cross": cross[vpn_name],
                "intra_ratio": round(own / src.sent, 4) if src.sent else 0.0,
            }
        )
    extranet_delivered = red_sink.received("green-to-red")
    rows.append(
        {
            "vpn": "green(extranet->red)",
            "sent": sources["green"].sent,
            "delivered_intra": extranet_delivered,
            "delivered_cross": blue_sink.received("green-to-red"),
            "intra_ratio": round(extranet_delivered / sources["green"].sent, 4),
        }
    )
    raw = {"ctx": ctx, "sinks": sinks, "sources": sources, "cross": cross}
    return rows, raw
