"""Shared scenario plumbing for the experiment suite.

Experiments are plain functions returning ``(rows, raw)``: ``rows`` is a
list of flat dicts ready for :func:`repro.metrics.print_table` (the
"table the paper would have shown"), ``raw`` carries the objects tests
assert against.  Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.metrics.stats import FlowStats, summarize_flow, summarize_hybrid_flow
from repro.net.node import Node
from repro.qos.classifier import mpls_aware_classifier
from repro.qos.queues import (
    ClassQueue,
    DeficitRoundRobin,
    DropTailFifo,
    FairQueueing,
    PriorityScheduler,
    QueueDiscipline,
    WeightedRoundRobin,
)
from repro.topology import Network
from repro.traffic.generators import TrafficSource
from repro.traffic.sink import FlowSink

__all__ = [
    "ExperimentRun",
    "make_qdisc_factory",
    "three_class_queues",
    "run_and_summarize",
]


def three_class_queues(capacity_packets: int = 100) -> list[ClassQueue]:
    """EF / AF / BE class queues in the standard order."""
    return [
        ClassQueue("EF", capacity_packets=capacity_packets),
        ClassQueue("AF", capacity_packets=capacity_packets),
        ClassQueue("BE", capacity_packets=capacity_packets),
    ]


def make_qdisc_factory(
    kind: str,
    capacity_packets: int = 100,
    classify: Callable | None = None,
    weights: Sequence[float] = (8.0, 4.0, 1.0),
) -> Callable[[Node, str], QueueDiscipline]:
    """Factory of per-interface queue disciplines.

    ``kind`` ∈ {"fifo", "priority", "wfq", "drr", "wrr"}.  Classful kinds
    classify on MPLS EXP when labeled, outer DSCP otherwise — the interior
    behaviour of claim C6.
    """
    cls = classify or mpls_aware_classifier

    def factory(node: Node, ifname: str) -> QueueDiscipline:
        if kind == "fifo":
            return DropTailFifo(capacity_packets=capacity_packets)
        queues = three_class_queues(capacity_packets)
        if kind == "priority":
            return PriorityScheduler(queues, cls)
        if kind == "wfq":
            return FairQueueing(queues, cls, list(weights))
        if kind == "drr":
            # Quanta in bytes; scale weights by one MTU.
            return DeficitRoundRobin(queues, cls, [int(w * 1500) for w in weights])
        if kind == "wrr":
            return WeightedRoundRobin(queues, cls, [max(1, int(w)) for w in weights])
        raise ValueError(f"unknown qdisc kind {kind!r}")

    return factory


@dataclass
class ExperimentRun:
    """One simulation run's bookkeeping: sources, sinks, timing."""

    net: Network
    sources: list[TrafficSource] = field(default_factory=list)
    sinks: dict[str, FlowSink] = field(default_factory=dict)
    warmup_s: float = 0.5
    measure_s: float = 5.0
    fluid: Any = None  # lazily-created FluidRouter (hybrid runs only)

    def add_source(self, source: TrafficSource, start: float | None = None) -> TrafficSource:
        """Register and start a source for the measurement window."""
        self.sources.append(source)
        begin = self.warmup_s if start is None else start
        source.start(begin, stop_at=self.warmup_s + self.measure_s)
        return source

    def sink_at(self, node: Node) -> FlowSink:
        """One sink per node, shared across flows terminating there."""
        sink = self.sinks.get(node.name)
        if sink is None:
            sink = FlowSink(self.net.sim).attach(node)
            self.sinks[node.name] = sink
        return sink

    def fluid_plane(self, **kwargs: Any) -> Any:
        """The run's :class:`~repro.traffic.fluid.FluidRouter`, created on
        first use and armed over the measurement window (same start/stop
        schedule :meth:`add_source` gives packet sources)."""
        if self.fluid is None:
            from repro.traffic.fluid import FluidRouter

            self.fluid = FluidRouter(self.net, **kwargs)
            self.fluid.start(
                self.warmup_s, stop_at=self.warmup_s + self.measure_s
            )
        return self.fluid

    def execute(self, drain_s: float = 1.0) -> None:
        """Run warmup + measurement + drain."""
        self.net.run(self.warmup_s + self.measure_s + drain_s)

    def stats_for(self, source: TrafficSource, sink: FlowSink) -> FlowStats:
        return summarize_flow(source, sink, duration_s=self.measure_s)

    def hybrid_stats_for(self, agg: Any, sink: FlowSink) -> FlowStats:
        return summarize_hybrid_flow(agg, sink, duration_s=self.measure_s)

    def manifest(self, config: dict[str, Any] | None = None) -> dict[str, Any] | None:
        """Telemetry run manifest, or ``None`` when telemetry is off.

        The harness's own timing plus source/sink counts are folded into
        the manifest's ``config`` block alongside the caller's entries.
        """
        session = self.net.telemetry
        if session is None:
            return None
        cfg: dict[str, Any] = {
            "warmup_s": self.warmup_s,
            "measure_s": self.measure_s,
            "sources": len(self.sources),
            "sinks": len(self.sinks),
        }
        if config:
            cfg.update(config)
        return session.manifest(config=cfg)


def run_and_summarize(
    run: ExperimentRun,
    pairs: Sequence[tuple[TrafficSource, FlowSink]],
    drain_s: float = 1.0,
) -> list[FlowStats]:
    """Execute the run and summarize each (source, sink) pair in order."""
    run.execute(drain_s=drain_s)
    return [run.stats_for(src, sink) for src, sink in pairs]
