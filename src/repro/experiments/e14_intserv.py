"""E14 — IntServ/RSVP per-flow QoS vs DiffServ aggregation: the cost of
"individually selectable QoS".

§2.2: carriers "are uncomfortable with individually selectable QoS" and
"users question the size of the administration task".  Here both
architectures deliver the *same* protection to N voice flows crossing a
congested core, and the table shows what each costs:

* **IntServ** — one RSVP reservation per flow: per-router state grows
  linearly with flows, soft-state refreshes burn PATH+RESV pairs every
  30 s forever, and every core hop multi-field-classifies every packet.
* **DiffServ/MPLS** — flows are aggregated into the EF class at the edge:
  core state is the class count (constant), no per-flow signaling exists,
  and the core classifies on 3 EXP bits.

Both columns include the measured p99 delay of the protected flows, to
show the aggregation costs nothing in delivered quality at this scale —
the paper's §2.2 argument, quantified.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun, three_class_queues
from repro.qos.classifier import FlowMatch
from repro.qos.dscp import DSCP
from repro.qos.intserv import IntServ, intserv_classifier
from repro.qos.queues import FairQueueing
from repro.routing.spf import converge
from repro.topology import Network, attach_host, build_line
from repro.traffic.generators import CbrSource, voice_source

__all__ = ["run_architecture", "run_e14"]

CORE_BPS = 8e6
N_HOPS = 4   # routers in the line


def _testbed(seed: int, classify_factory) -> dict[str, Any]:
    net = Network(seed=seed)

    def qdisc(node, ifname):
        return FairQueueing(
            three_class_queues(100), classify_factory(node), [16.0, 4.0, 1.0]
        )

    net.default_qdisc_factory = qdisc
    routers = build_line(net, N_HOPS, rate_bps=CORE_BPS)
    tx = attach_host(net, routers[0], "10.140.0.1", name="tx", rate_bps=100e6)
    rx = attach_host(net, routers[-1], "10.140.0.2", name="rx", rate_bps=100e6)
    converge(net)
    return {"net": net, "routers": routers, "tx": tx, "rx": rx}


def run_architecture(
    arch: str, n_flows: int, seed: int = 141, measure_s: float = 6.0
) -> dict[str, Any]:
    """Protect ``n_flows`` voice flows with one architecture; count costs."""
    if arch == "intserv":
        ctx = _testbed(seed, lambda node: intserv_classifier(node))
    else:
        from repro.qos.classifier import mpls_aware_classifier
        ctx = _testbed(seed, lambda node: mpls_aware_classifier)
    net, routers, tx, rx = ctx["net"], ctx["routers"], ctx["tx"], ctx["rx"]

    intserv: IntServ | None = None
    if arch == "intserv":
        intserv = IntServ(net)
        for i in range(n_flows):
            intserv.reserve(
                "r0", f"r{N_HOPS - 1}",
                FlowMatch(dst_port=5004 + i, proto="udp"),
                rate_bps=80e3,
            )

    run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
    sink = run.sink_at(rx)
    voices = []
    for i in range(n_flows):
        # Under DiffServ the edge marks EF (dscp=46); under IntServ the
        # reservation filter identifies the flow and DSCP stays 0.
        dscp = int(DSCP.EF) if arch == "diffserv" else 0
        src = voice_source(net.sim, tx.send, f"v{i}", "10.140.0.1", "10.140.0.2",
                           dscp=dscp)
        src.dst_port = 5004 + i
        voices.append(run.add_source(src))
    bulk = run.add_source(
        CbrSource(net.sim, tx.send, "bulk", "10.140.0.1", "10.140.0.2",
                  payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=9e6)
    )
    run.execute(drain_s=1.0)

    stats = [run.stats_for(v, sink) for v in voices]
    worst_p99 = max(s.p99_delay_s for s in stats)
    loss = sum(s.sent - s.received for s in stats) / max(1, sum(s.sent for s in stats))
    if arch == "intserv":
        assert intserv is not None
        state = intserv.state_per_router()
        core_state = max(state.values())
        signaling = (
            net.counters["rsvp.path_msgs"] + net.counters["rsvp.resv_msgs"]
        )
        refresh = intserv.refresh_messages_per_interval()
    else:
        core_state = len(three_class_queues())  # the class count, period
        signaling = 0
        refresh = 0
    return {
        "arch": arch,
        "flows": n_flows,
        "worst_p99_s": worst_p99,
        "voice_loss": loss,
        "core_state_per_router": core_state,
        "setup_messages": signaling,
        "refresh_msgs_per_30s": refresh,
        "stats": stats,
        "net": net,
    }


def run_e14(
    flow_counts: tuple[int, ...] = (8, 32), seed: int = 141, measure_s: float = 6.0
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E14 table: arch × flow-count, quality vs administration cost."""
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for n in flow_counts:
        for arch in ("intserv", "diffserv"):
            result = run_architecture(arch, n, seed=seed, measure_s=measure_s)
            raw[(arch, n)] = result
            rows.append(
                {
                    "arch": arch,
                    "flows": n,
                    "voice_p99_ms": round(result["worst_p99_s"] * 1e3, 2),
                    "voice_loss%": round(result["voice_loss"] * 100, 2),
                    "core_state/router": result["core_state_per_router"],
                    "setup_msgs": result["setup_messages"],
                    "refresh/30s": result["refresh_msgs_per_30s"],
                }
            )
    return rows, raw
