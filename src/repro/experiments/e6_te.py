"""E6 — Traffic engineering: CSPF tunnels vs destination-based routing.

Claim C7: "Users can also control QoS and general traffic flow more
precisely to avoid congested, constrained or disabled links" — which plain
IGP routing cannot, because its static metrics see no load (claim C2's
flip side).  The classic fish topology makes the failure vivid: three
4 Mb/s flows from A to F all follow the one shortest path (the bottom
branch, 10 Mb/s) and two-thirds of the offered load dies, while the top
branch idles.

With MPLS TE the ingress signals one bandwidth-reserved LSP per flow:
CSPF admits the first two onto the bottom branch (8 ≤ 10 Mb/s) and is
*forced* by the admission check to place the third on the idle top branch.
Aggregate goodput jumps to the full offered load and the utilization
spread across branches flattens.

A second scenario exercises the "disabled links" half of the claim: after
a bottom-branch link failure, re-running CSPF re-signals the tunnels
around the dead link.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.mpls.te import TrafficEngineering
from repro.net.address import Prefix
from repro.routing.spf import converge, spf_paths
from repro.topology import Network, attach_host, build_fish
from repro.traffic.generators import CbrSource

__all__ = ["build_fish_scenario", "run_config", "run_e6", "FLOW_BPS", "N_FLOWS"]

LINK_BPS = 10e6
FLOW_BPS = 4e6
N_FLOWS = 3


def build_fish_scenario(seed: int) -> dict[str, Any]:
    """Fish of LSRs + one src host at A and one dst host per flow at F."""
    net = Network(seed=seed)
    nodes = build_fish(
        net,
        rate_bps=LINK_BPS,
        trunk_rate_bps=3 * LINK_BPS,  # head/tail trunks are never the constraint
        node_factory=lambda n, name: n.add_node(Lsr(n.sim, name)),
    )
    src = attach_host(net, nodes["A"], "10.60.0.1", name="tx")
    dsts = [
        attach_host(net, nodes["F"], f"10.60.1.{i + 1}", name=f"rx{i}")
        for i in range(N_FLOWS)
    ]
    converge(net)
    return {"net": net, "nodes": nodes, "src": src, "dsts": dsts}


def _start_flows(run: ExperimentRun, ctx: dict[str, Any]):
    sources = []
    for i, dst in enumerate(ctx["dsts"]):
        sources.append(
            run.add_source(
                CbrSource(
                    run.net.sim, ctx["src"].send, f"flow{i}",
                    "10.60.0.1", str(dst.loopback),
                    payload_bytes=1000, rate_bps=FLOW_BPS,
                )
            )
        )
    return sources


def run_config(
    use_te: bool, seed: int = 51, measure_s: float = 6.0, fail_link: bool = False
) -> dict[str, Any]:
    """One E6 run: shortest-path (LDP follows IGP) or CSPF tunnels."""
    ctx = build_fish_scenario(seed)
    net = ctx["net"]

    lsp_paths: list[list[str]] = []
    if use_te:
        te = TrafficEngineering(net)
        if fail_link:
            # The "disabled link" variant: G-H is down; CSPF must avoid it.
            net.link_between("G", "H").set_up(False)
            te_avoid = [("G", "H")]
        else:
            te_avoid = []
        for i, dst in enumerate(ctx["dsts"]):
            path = te.cspf("A", "F", FLOW_BPS, avoid_links=te_avoid)
            if path is None:
                # Admission control refuses rather than congest the tunnels
                # already placed — under the link failure the surviving
                # branch only fits two 4 Mb/s reservations.  The rejected
                # flow gets no LSP (and, with no LDP fallback here, no
                # path): its row shows zero goodput while the admitted
                # tunnels keep their full rate.
                lsp_paths.append(["rejected"])
                continue
            lsp = te.signal(f"lsp{i}", path, FLOW_BPS)
            te.autoroute(lsp, [Prefix.of(dst.loopback, 32)])
            lsp_paths.append(path)
        ctx["te"] = te
    else:
        run_ldp(net)
        if fail_link:
            net.link_between("G", "H").set_up(False)
        sp = spf_paths(net, "A", "F")
        lsp_paths = [sp] * N_FLOWS

    run = ExperimentRun(net, warmup_s=0.3, measure_s=measure_s)
    sinks = [run.sink_at(dst) for dst in ctx["dsts"]]
    sources = _start_flows(run, ctx)
    run.execute(drain_s=0.5)

    stats = [run.stats_for(s, sink) for s, sink in zip(sources, sinks)]
    elapsed = run.warmup_s + run.measure_s
    util = net.link_utilization(elapsed)
    bottom = max(util.get("B->G", 0.0), util.get("G->H", 0.0), util.get("H->E", 0.0))
    top = max(util.get("B->C", 0.0), util.get("C->D", 0.0), util.get("D->E", 0.0))
    return {
        "config": ("cspf-te" if use_te else "shortest-path") + ("+linkfail" if fail_link else ""),
        "flows": stats,
        "paths": lsp_paths,
        "util_bottom": bottom,
        "util_top": top,
        "aggregate_goodput_bps": sum(s.throughput_bps for s in stats),
        "net": net,
    }


def run_e6(seed: int = 51, measure_s: float = 6.0) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E6 table: config × flow plus branch utilizations."""
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for use_te, fail in ((False, False), (True, False), (True, True)):
        result = run_config(use_te, seed=seed, measure_s=measure_s, fail_link=fail)
        raw[result["config"]] = result
        for i, stats in enumerate(result["flows"]):
            rows.append(
                {
                    "config": result["config"],
                    **stats.row(),
                    "path": "-".join(result["paths"][i]),
                    "util_bottom": round(result["util_bottom"], 3),
                    "util_top": round(result["util_top"], 3),
                }
            )
    return rows, raw
