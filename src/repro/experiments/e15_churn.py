"""E15 — churn storms: incremental MP-BGP under operational stress.

The paper's scalability claims (C1/C5/C7) are steady-state counts; this
experiment stresses the *transition* costs an operator actually lives
with: sites joining and leaving, PEs drained for maintenance, whole VPNs
provisioned and torn down, core links flapping.  Each storm is a scripted
event sequence (in the style of ``jdewald__router-sim/rsvpfulltest.py``)
run end-to-end through provisioning, the incremental MP-BGP churn engine
(:mod:`repro.vpn.bgp`), and the incremental IGP fast path — measuring
per-storm reconvergence wall time and exact UPDATE message counts.

Storms
------
* **site-flap**  — k single-site remove/re-add flaps against an N-site
  VPN; the delta path touches 2 NLRI per event instead of re-distributing
  all ~2N.
* **pe-drain**   — maintenance drain + restore of the busiest PE:
  implicit withdraws, import flush, full re-advertise + refresh.
* **vpn-wave**   — provision a new VPN across the edge, converge the
  delta, then tear the whole VPN down again.
* **link-flap**  — fail and restore a core (P–P) trunk, driving the
  incremental IGP ``reconverge()``; BGP state is untouched (next hops
  are loopbacks), which is itself the point.

A final topology table prices one UPDATE under full-mesh, single-RR, and
RR-cluster session layouts on the same PE set (sessions, per-route
fan-out, cluster-list suppressions) without re-provisioning anything.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.experiments.e1_scalability import mpls_base
from repro.routing.spf import reconverge
from repro.vpn.bgp import MpBgp

__all__ = ["run_e15", "churn_storms"]


def _bgp_counters(net) -> dict[str, int]:
    return {
        k: v for k, v in net.counters.snapshot().items() if k.startswith("bgp.")
    }


def _delta(before: dict[str, int], after: dict[str, int], key: str) -> int:
    return after.get(key, 0) - before.get(key, 0)


def churn_storms(
    ctx: dict[str, Any],
    site_flaps: int = 10,
    wave_sites: int = 8,
    link_flaps: int = 2,
) -> list[dict[str, Any]]:
    """Run the scripted storm sequence against a converged mpls_base ctx."""
    net, nodes, prov = ctx["net"], ctx["nodes"], ctx["prov"]
    vpn = prov.vpns["corp"]
    rows: list[dict[str, Any]] = []

    def record(storm: str, events: int, wall_s: float, before, after) -> None:
        rows.append(
            {
                "storm": storm,
                "events": events,
                "wall_ms": round(wall_s * 1e3, 3),
                "updates": _delta(before, after, "bgp.updates"),
                "imported": _delta(before, after, "bgp.routes_imported"),
                "removed": _delta(before, after, "bgp.routes_removed"),
                "withdrawn": _delta(before, after, "bgp.routes_withdrawn"),
            }
        )

    # --- storm 1: single-site flaps -----------------------------------
    before = _bgp_counters(net)
    t0 = perf_counter()
    for i in range(site_flaps):
        site = vpn.sites[-1 - i]
        pe = site.pe
        prov.remove_site(site)
        fresh = prov.add_site(vpn, pe, prefix=site.prefix, num_hosts=0)
        prov.bgp_engine().export_delta(pe, pe.vrfs[vpn.name])
        assert fresh.pe is pe
    record("site-flap", 2 * site_flaps, perf_counter() - t0,
           before, _bgp_counters(net))

    # --- storm 2: PE maintenance drain --------------------------------
    victim = prov.pes()[0]
    before = _bgp_counters(net)
    t0 = perf_counter()
    prov.drain_pe(victim)
    prov.restore_pe(victim)
    record("pe-drain", 2, perf_counter() - t0, before, _bgp_counters(net))

    # --- storm 3: VPN add/remove wave ---------------------------------
    before = _bgp_counters(net)
    t0 = perf_counter()
    wave = prov.create_vpn("wave", supernet="172.16.0.0/12")
    pes = prov.pes()
    for i in range(wave_sites):
        prov.add_site(wave, pes[i % len(pes)], num_hosts=0)
    prov.converge_bgp()
    prov.remove_vpn("wave")
    record("vpn-wave", 2 * wave_sites, perf_counter() - t0,
           before, _bgp_counters(net))

    # --- storm 4: core link flaps (IGP fast path) ---------------------
    before = _bgp_counters(net)
    t0 = perf_counter()
    spf_events = 0
    for _ in range(link_flaps):
        link = net.link_between("P1", "P2")
        link.set_up(False)
        spf_events += reconverge(net)
        link.set_up(True)
        spf_events += reconverge(net)
    row_before = len(rows)
    record("link-flap", 2 * link_flaps, perf_counter() - t0,
           before, _bgp_counters(net))
    rows[row_before]["spf_installs"] = spf_events
    return rows


def topology_table(prov) -> list[dict[str, Any]]:
    """Price one UPDATE under the candidate session layouts (same PEs)."""
    pes = prov.pes()
    names = [pe.name for pe in pes]
    layouts: list[tuple[str, dict[str, Any]]] = [("full-mesh", {})]
    if len(names) >= 2:
        layouts.append(("route-reflector", {"route_reflector": names[0]}))
    if len(names) >= 4:
        layouts.append(
            ("rr-cluster-2", {"rr_clusters": [names[0], names[1]]})
        )
        layouts.append(
            ("rr-redundant", {"rr_clusters": [(names[0], names[1])]})
        )
    rows = []
    for label, kwargs in layouts:
        engine = MpBgp(prov.net, pes, **kwargs)
        origin = next(n for n in names if n not in engine.reflectors)
        sent, suppressed = engine.fanout(origin)
        rows.append(
            {
                "topology": label,
                "sessions": engine.session_count(),
                "updates_per_route": sent,
                "suppressed_per_route": suppressed,
            }
        )
    return rows


def run_e15(
    n_sites: int = 500,
    seed: int = 23,
    site_flaps: int = 10,
    wave_sites: int = 8,
    link_flaps: int = 2,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Provision N sites, then run the storm suite and the topology table."""
    t0 = perf_counter()
    ctx = mpls_base(n_sites, seed=seed)
    build_s = perf_counter() - t0
    rows = churn_storms(
        ctx, site_flaps=site_flaps, wave_sites=wave_sites, link_flaps=link_flaps
    )
    topo = topology_table(ctx["prov"])
    raw: dict[str, Any] = {
        "ctx": ctx,
        "build_s": build_s,
        "n_sites": n_sites,
        "topology": topo,
        "counters": _bgp_counters(ctx["net"]),
    }
    return rows + [{"storm": f"— topology ({r['topology']}) —",
                    "events": r["sessions"],
                    "updates": r["updates_per_route"],
                    "withdrawn": r["suppressed_per_route"]} for r in topo], raw
