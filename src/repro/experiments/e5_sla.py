"""E5 — End-to-end SLA: CPE CBQ → DSCP marking → PE policing → EXP core.

The paper's §5 chain, verbatim: "the customer premises device could use
technologies such as CBQ to classify traffic and DiffServ/ToS to mark it
...  The network edge will then map the CPE-specified DiffServ/ToS service
level specification into the QoS field of the MPLS header, providing a way
to protect the service level definition on an end-to-end basis."

We provision a two-site MPLS VPN whose path has *two* bottlenecks — the
customer access uplink (CE→PE) and a shared core link congested by another
customer's bulk traffic — and switch each stage of the chain on/off:

* ``none``      — FIFO access, FIFO core: both bottlenecks hurt voice.
* ``cbq-only``  — CBQ at the CPE uplink, FIFO core: access fixed, core not.
* ``core-only`` — FIFO access, EXP-scheduled core: core fixed, access not.
* ``full``      — CBQ at CPE + DSCP→EXP at PE + WFQ-on-EXP core (+ an EF
  policer at the PE protecting the core from out-of-contract EF).

The verdict column evaluates the voice/data SLAs; only ``full`` should
pass both — end-to-end QoS needs every stage, which is the paper's thesis.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun, make_qdisc_factory
from repro.metrics.sla import DATA_SLA, VOICE_SLA, evaluate
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.qos.cbq import CbqClass, CbqScheduler
from repro.qos.classifier import ba_classifier
from repro.qos.dscp import DSCP, class_of_dscp_name
from repro.qos.meter import TokenBucket, policer
from repro.routing.spf import converge
from repro.topology import Network
from repro.traffic.generators import CbrSource, OnOffSource, voice_source
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner

__all__ = ["run_stage", "run_e5", "STAGES"]

ACCESS_BPS = 3e6
CORE_BPS = 5e6
STAGES = ("none", "cbq-only", "core-only", "full")


def _cpe_cbq() -> CbqScheduler:
    """The §5 CPE configuration: voice guaranteed + priority, data assured,
    bulk takes the leftovers (all may borrow spare uplink capacity except
    voice, which is deliberately capped at its allocation)."""
    classes = [
        CbqClass("voice", rate_bps=0.4e6, priority=0, can_borrow=False, burst_bytes=4000),
        CbqClass("data", rate_bps=1.2e6, priority=1, can_borrow=True),
        CbqClass("bulk", rate_bps=0.4e6, priority=2, can_borrow=True),
    ]
    return CbqScheduler(classes, ba_classifier)


def _build(stage: str, seed: int) -> dict[str, Any]:
    net = Network(seed=seed)
    core_qos = stage in ("core-only", "full")
    net.default_qdisc_factory = make_qdisc_factory(
        "wfq", weights=(16.0, 4.0, 1.0)
    ) if core_qos else make_qdisc_factory("fifo")

    pe1 = net.add_node(PeRouter(net.sim, "pe1"))
    p1 = net.add_node(Lsr(net.sim, "p1"))
    p2 = net.add_node(Lsr(net.sim, "p2"))
    pe2 = net.add_node(PeRouter(net.sim, "pe2"))
    net.connect(pe1, p1, CORE_BPS, 1e-3)
    net.connect(p1, p2, CORE_BPS, 1e-3)   # the shared core bottleneck
    net.connect(p2, pe2, CORE_BPS, 1e-3)

    pe1.qos_exp_mapping = core_qos
    pe2.qos_exp_mapping = core_qos

    prov = VpnProvisioner(net, access_rate_bps=ACCESS_BPS)
    corp = prov.create_vpn("corp")
    s1 = prov.add_site(corp, pe1, prefix="10.1.0.0/24")
    s2 = prov.add_site(corp, pe2, prefix="10.2.0.0/24")
    other = prov.create_vpn("other", supernet="10.0.0.0/8")
    o1 = prov.add_site(other, pe1, prefix="10.9.1.0/24")
    o2 = prov.add_site(other, pe2, prefix="10.9.2.0/24")
    converge(net)
    run_ldp(net)
    prov.converge_bgp()

    if stage in ("cbq-only", "full"):
        s1.ce.interfaces[s1.ce_ifname].qdisc = _cpe_cbq()
    else:
        # The default qdisc factory applies network-wide, so a QoS core
        # would silently give the access uplink WFQ too; "core-only" must
        # keep the customer uplink dumb for the ablation to mean anything.
        from repro.qos.queues import DropTailFifo

        s1.ce.interfaces[s1.ce_ifname].qdisc = DropTailFifo(capacity_packets=100)

    if stage == "full":
        # PE ingress protection: EF aggregate policed to its contract so a
        # runaway customer cannot flood the core's priority class.  (Our
        # conditioner model is egress-side: install it on the PE's
        # core-facing interface, matching EF-class customer packets.)
        ef_bucket = TokenBucket(rate_bps=0.5e6, burst_bytes=8000)
        is_ef = lambda pkt: class_of_dscp_name(pkt.ip.dscp) == "EF"
        pe1.interfaces["to-p1"].add_conditioner(policer(ef_bucket, match=is_ef))

    return {
        "net": net, "prov": prov,
        "s1": s1, "s2": s2, "o1": o1, "o2": o2,
    }


def run_stage(
    stage: str,
    seed: int = 41,
    measure_s: float = 8.0,
    streaming: bool = False,
    hybrid: bool = False,
    prebuilt: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Run one ablation stage and evaluate the SLAs.

    ``prebuilt`` short-circuits the build: the ctx dict ``_build`` returns
    (``net``/``prov``/``s1``/``s2``/``o1``/``o2``) — in practice restored
    from a :mod:`repro.sim.snapshot` image by the warm-start sweep path —
    is used as-is, and the RNG streams are reseeded to ``seed`` (builds
    consume no streams, so this matches a cold build with that seed).

    With ``streaming=True`` a live :class:`repro.obs.slo.SloEngine` rides
    along: the same SLAs are checked continuously from bounded-memory
    estimators while the batch path below stays the parity oracle, and the
    result gains an ``"slo"`` block with the streaming verdicts and rows.

    With ``hybrid=True`` the other customer's background filler rides the
    fluid plane.  Its 4 Mb/s exceeds the 3 Mb/s access uplink's headroom,
    so the aggregate expands at the CE and the shared core still sees the
    congestion as real packets — the corp flows (all real) experience the
    same contention either way, within the parity tolerances.
    """
    if prebuilt is not None:
        ctx = prebuilt
        if ctx["net"].streams.seed != seed:
            ctx["net"].streams.reseed(seed)
    else:
        ctx = _build(stage, seed)
    net = ctx["net"]
    s1, s2, o1, o2 = ctx["s1"], ctx["s2"], ctx["o1"], ctx["o2"]
    h1, h2 = s1.hosts[0], s2.hosts[0]
    b1, b2 = o1.hosts[0], o2.hosts[0]

    engine = None
    if streaming:
        from repro.obs.slo import SloEngine

        engine = SloEngine(net.sim, window_s=0.5)
        engine.bind("voice", VOICE_SLA)
        engine.bind("data", DATA_SLA)
        engine.map_node_vrf(h2.name, "corp")
        engine.map_node_vrf(b2.name, "other")
        engine.attach(net)

    run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
    sink = run.sink_at(h2)
    bg_sink = run.sink_at(b2)

    voice = run.add_source(
        voice_source(net.sim, h1.send, "voice", str(h1.loopback), str(h2.loopback))
    )
    data = run.add_source(
        OnOffSource(
            net.sim, h1.send, "data", str(h1.loopback), str(h2.loopback),
            payload_bytes=700, dscp=int(DSCP.AF11), proto="tcp",
            peak_bps=2.5e6, mean_on_s=0.15, mean_off_s=0.35,
            rng=net.streams.stream("e5.data"),
        )
    )
    bulk = run.add_source(
        CbrSource(
            net.sim, h1.send, "bulk", str(h1.loopback), str(h2.loopback),
            payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=4e6,
        )
    )
    # Another customer's bulk congests the shared core link only.
    if hybrid:
        from repro.traffic.fluid import FluidAggregate

        background = FluidAggregate(
            net.sim, "bg", str(b1.loopback), str(b2.loopback),
            payload_bytes=1400, dscp=int(DSCP.BE), kind="cbr", rate_bps=4e6,
        )
        run.fluid_plane().add(background, b1, b2)
    else:
        background = run.add_source(
            CbrSource(
                net.sim, b1.send, "bg", str(b1.loopback), str(b2.loopback),
                payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=4e6,
            )
        )

    run.execute(drain_s=1.0)
    voice_stats = run.stats_for(voice, sink)
    data_stats = run.stats_for(data, sink)
    bulk_stats = run.stats_for(bulk, sink)
    result = {
        "stage": stage,
        "voice": voice_stats,
        "data": data_stats,
        "bulk": bulk_stats,
        "background": (
            run.hybrid_stats_for(background, bg_sink) if hybrid
            else run.stats_for(background, bg_sink)
        ),
        "voice_sla": evaluate(VOICE_SLA, voice_stats),
        "data_sla": evaluate(DATA_SLA, data_stats),
        "net": net,
        "hybrid": hybrid,
    }
    if hybrid:
        result["fluid"] = run.fluid.summary()
    if engine is not None:
        engine.finalize()
        # Same duration as run.stats_for so verdicts compare 1:1.
        result["slo"] = {
            "engine": engine,
            "voice": engine.verdict("voice", sent=voice.sent, duration_s=measure_s),
            "data": engine.verdict("data", sent=data.sent, duration_s=measure_s),
            "rows": engine.report(),
        }
    return result


def run_e5(
    seed: int = 41, measure_s: float = 8.0, hybrid: bool = False
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E5 table: stage × class with SLA verdicts."""
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for stage in STAGES:
        result = run_stage(stage, seed=seed, measure_s=measure_s, hybrid=hybrid)
        raw[stage] = result
        for flow, sla in (("voice", "voice_sla"), ("data", "data_sla"), ("bulk", None)):
            row = {"stage": stage, **result[flow].row()}
            if sla is not None:
                row["sla"] = "PASS" if result[sla].conformant else "FAIL"
            else:
                row["sla"] = "n/a"
            rows.append(row)
    return rows, raw
