"""E9 — Ablations over the design choices DESIGN.md calls out.

Five sub-studies, each isolating one knob of the architecture:

* **E9a schedulers** — FIFO / strict priority / WRR / DRR / WFQ in the
  core: how much EF delay/jitter each buys, and what it costs BE.
* **E9b AQM** — DropTail vs RED vs WRED on the bottleneck under bursty
  load: standing-queue delay and drop placement.
* **E9c EXP placement & PHP** — who carries the class on the last hop:
  EXP on both stack entries (RFC 3270's safe default), outer-only with
  PHP (class lost one hop early → last-hop QoS hole), outer-only with
  explicit-null (class kept to the egress).
* **E9d label-stack overhead** — wire efficiency vs stack depth and
  payload size (the 4-byte shim is the entire data-plane cost of MPLS).
* **E9e iBGP topology** — full mesh vs route reflector: sessions scale
  O(P²) vs O(P) while update counts match (reflection saves sessions,
  not messages).
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun, make_qdisc_factory
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.net.packet import IPV4_HEADER_BYTES, MPLS_SHIM_BYTES
from repro.qos.dscp import DSCP
from repro.qos.queues import DropTailFifo
from repro.qos.red import RedParams, RedQueueManager, standard_wred
from repro.routing.spf import converge
from repro.topology import Network, attach_host, build_backbone, build_line
from repro.traffic.generators import CbrSource, OnOffSource, voice_source
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner

__all__ = [
    "run_e9a_schedulers",
    "run_e9b_aqm",
    "run_e9c_exp_php",
    "run_e9d_stack_overhead",
    "run_e9e_ibgp",
    "run_e9f_elsp_llsp",
    "run_e9",
]

BOTTLENECK_BPS = 5e6


# ---------------------------------------------------------------------------
# E9a — scheduler comparison
# ---------------------------------------------------------------------------

def run_e9a_schedulers(
    seed: int = 91, measure_s: float = 6.0
) -> tuple[list[dict[str, Any]], dict[str, Any]]:

    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for kind in ("fifo", "priority", "wrr", "drr", "wfq"):
        net = Network(seed=seed)
        net.default_qdisc_factory = make_qdisc_factory(kind, weights=(16.0, 4.0, 1.0))
        routers = build_line(net, 4, rate_bps=BOTTLENECK_BPS)
        tx = attach_host(net, routers[0], "10.91.0.1", name="tx")
        rx = attach_host(net, routers[3], "10.91.0.2", name="rx")
        converge(net)

        run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
        sink = run.sink_at(rx)
        voice = run.add_source(
            voice_source(net.sim, tx.send, "voice", "10.91.0.1", "10.91.0.2")
        )
        data = run.add_source(
            OnOffSource(
                net.sim, tx.send, "data", "10.91.0.1", "10.91.0.2",
                payload_bytes=700, dscp=int(DSCP.AF11),
                peak_bps=4e6, mean_on_s=0.2, mean_off_s=0.3,
                rng=net.streams.stream("e9a.data"),
            )
        )
        bulk = run.add_source(
            CbrSource(
                net.sim, tx.send, "bulk", "10.91.0.1", "10.91.0.2",
                payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=6e6,
            )
        )
        run.execute(drain_s=1.0)
        v = run.stats_for(voice, sink)
        b = run.stats_for(bulk, sink)
        raw[kind] = {"voice": v, "data": run.stats_for(data, sink), "bulk": b}
        rows.append(
            {
                "scheduler": kind,
                "voice_p99_ms": round(v.p99_delay_s * 1e3, 3),
                "voice_jitter_ms": round(v.jitter_rfc3550_s * 1e3, 3),
                "voice_loss%": round(v.loss_ratio * 100, 2),
                "bulk_thru_kbps": round(b.throughput_bps / 1e3, 1),
                "bulk_loss%": round(b.loss_ratio * 100, 2),
            }
        )
    return rows, raw


# ---------------------------------------------------------------------------
# E9b — AQM comparison
# ---------------------------------------------------------------------------

def run_e9b_aqm(
    seed: int = 92, measure_s: float = 6.0
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    cap_bytes = 150 * 1500
    for kind in ("droptail", "red", "wred"):
        net = Network(seed=seed)
        rng = net.streams.stream("e9b.aqm")

        def factory(node, ifname, _kind=kind, _rng=rng):
            if _kind == "droptail":
                return DropTailFifo(capacity_packets=None, capacity_bytes=cap_bytes)
            if _kind == "red":
                policy = RedQueueManager(
                    RedParams(min_th=cap_bytes // 5, max_th=cap_bytes // 2, max_p=0.1),
                    _rng,
                )
            else:
                policy = standard_wred(cap_bytes, _rng)
            return DropTailFifo(
                capacity_packets=None, capacity_bytes=cap_bytes, drop_policy=policy
            )

        net.default_qdisc_factory = factory
        routers = build_line(net, 3, rate_bps=BOTTLENECK_BPS)
        tx = attach_host(net, routers[0], "10.92.0.1", name="tx")
        rx = attach_host(net, routers[2], "10.92.0.2", name="rx")
        converge(net)

        run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
        sink = run.sink_at(rx)
        # Eight bursty AF flows at staggered drop precedences overload the
        # bottleneck ~1.3x on average, far more at burst coincidence.
        sources = []
        af_dscps = [int(DSCP.AF11), int(DSCP.AF12), int(DSCP.AF13)]
        for i in range(8):
            sources.append(
                run.add_source(
                    OnOffSource(
                        net.sim, tx.send, f"burst{i}", "10.92.0.1", "10.92.0.2",
                        payload_bytes=1000, dscp=af_dscps[i % 3],
                        peak_bps=2e6, mean_on_s=0.25, mean_off_s=0.35,
                        rng=net.streams.stream(f"e9b.src{i}"),
                    )
                )
            )
        run.execute(drain_s=1.0)
        stats = [run.stats_for(s, sink) for s in sources]
        mean_delay = sum(s.mean_delay_s for s in stats) / len(stats)
        p99 = max(s.p99_delay_s for s in stats)
        loss = sum(s.sent - s.received for s in stats) / max(1, sum(s.sent for s in stats))
        goodput = sum(s.throughput_bps for s in stats)
        raw[kind] = {"stats": stats, "net": net}
        rows.append(
            {
                "aqm": kind,
                "mean_delay_ms": round(mean_delay * 1e3, 2),
                "worst_p99_ms": round(p99 * 1e3, 2),
                "loss%": round(loss * 100, 2),
                "goodput_kbps": round(goodput / 1e3, 1),
            }
        )
    return rows, raw


# ---------------------------------------------------------------------------
# E9c — EXP placement and PHP
# ---------------------------------------------------------------------------

def run_e9c_exp_php(
    seed: int = 93, measure_s: float = 6.0
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    variants = (
        ("both+php", "both", True, False),
        ("outer-only+php", "outer-only", True, False),
        ("outer-only+explicit-null", "outer-only", False, True),
    )
    for label, exp_mode, php, explicit_null in variants:
        net = Network(seed=seed)
        net.default_qdisc_factory = make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))
        pe1 = net.add_node(PeRouter(net.sim, "pe1"))
        p1 = net.add_node(Lsr(net.sim, "p1"))
        pe2 = net.add_node(PeRouter(net.sim, "pe2"))
        net.connect(pe1, p1, 20e6, 1e-3)
        net.connect(p1, pe2, BOTTLENECK_BPS, 1e-3)  # last hop is the bottleneck

        prov = VpnProvisioner(net, access_rate_bps=20e6)
        vpn = prov.create_vpn("corp")
        s1 = prov.add_site(vpn, pe1, prefix="10.1.0.0/24")
        s2 = prov.add_site(vpn, pe2, prefix="10.2.0.0/24")
        converge(net)
        run_ldp(net, php=php, use_explicit_null=explicit_null)
        prov.converge_bgp()
        pe1.exp_mode = exp_mode
        pe2.exp_mode = exp_mode

        h1, h2 = s1.hosts[0], s2.hosts[0]
        run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
        sink = run.sink_at(h2)
        voice = run.add_source(
            voice_source(net.sim, h1.send, "voice", str(h1.loopback), str(h2.loopback))
        )
        bulk = run.add_source(
            CbrSource(
                net.sim, h1.send, "bulk", str(h1.loopback), str(h2.loopback),
                payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=6e6,
            )
        )
        run.execute(drain_s=1.0)
        v = run.stats_for(voice, sink)
        raw[label] = {"voice": v, "bulk": run.stats_for(bulk, sink), "net": net}
        rows.append(
            {
                "variant": label,
                "voice_p99_ms": round(v.p99_delay_s * 1e3, 3),
                "voice_loss%": round(v.loss_ratio * 100, 2),
                "voice_jitter_ms": round(v.jitter_rfc3550_s * 1e3, 3),
            }
        )
    return rows, raw


# ---------------------------------------------------------------------------
# E9d — label-stack wire overhead
# ---------------------------------------------------------------------------

def run_e9d_stack_overhead() -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Analytic wire efficiency per stack depth and payload size.

    Depth 0 = plain IP; 1 = LDP transport; 2 = VPN (tunnel + VPN label);
    3 = e.g. carrier's-carrier or FRR backup over the VPN stack.
    """
    rows: list[dict[str, Any]] = []
    payloads = (64, 160, 512, 1400)
    for depth in range(4):
        row: dict[str, Any] = {"labels": depth, "hdr_bytes": IPV4_HEADER_BYTES + depth * MPLS_SHIM_BYTES}
        for p in payloads:
            wire = p + IPV4_HEADER_BYTES + depth * MPLS_SHIM_BYTES
            row[f"eff_{p}B"] = round(p / wire, 4)
        rows.append(row)
    return rows, {"payloads": payloads}


# ---------------------------------------------------------------------------
# E9e — iBGP session topology
# ---------------------------------------------------------------------------

def run_e9e_ibgp(
    pe_counts: tuple[int, ...] = (2, 4, 8), sites_per_pe: int = 4, seed: int = 95
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for n_pes in pe_counts:
        pes = [f"E{i + 1}" for i in range(n_pes)]
        topologies: list[tuple[str, dict[str, Any]]] = [
            ("full-mesh", {}),
            ("route-reflector", {"route_reflector": pes[0]}),
        ]
        if n_pes >= 4:
            # Two single-RR clusters, and one redundant RR pair sharing a
            # cluster id (its partner copies are cluster-list suppressed).
            topologies.append(
                ("rr-cluster-2", {"rr_clusters": [pes[0], pes[1]]})
            )
            topologies.append(
                ("rr-redundant", {"rr_clusters": [(pes[0], pes[1])]})
            )
        for topology, bgp_kwargs in topologies:
            net = Network(seed=seed)

            def factory(n: Network, name: str):
                cls = PeRouter if name.startswith("E") else Lsr
                return n.add_node(cls(n.sim, name))

            nodes = build_backbone(net, node_factory=factory)
            prov = VpnProvisioner(net)
            vpn = prov.create_vpn("corp")
            for i in range(n_pes * sites_per_pe):
                prov.add_site(vpn, nodes[pes[i % n_pes]], num_hosts=0)  # type: ignore[arg-type]
            converge(net)
            result = prov.converge_bgp(**bgp_kwargs)
            raw[(n_pes, topology)] = result
            rows.append(
                {
                    "pes": n_pes,
                    "topology": topology,
                    "sessions": result.sessions,
                    "updates": result.updates_sent,
                    "suppressed": result.updates_suppressed,
                    "routes_imported": result.routes_imported,
                }
            )
    return rows, raw


# ---------------------------------------------------------------------------
# E9f — E-LSP vs L-LSP (RFC 3270's two DiffServ-over-MPLS models)
# ---------------------------------------------------------------------------

def run_e9f_elsp_llsp(
    seed: int = 96, measure_s: float = 6.0
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """One EXP-classed LSP vs one LSP *per class* whose label implies it.

    The QoS outcome should be identical; the cost difference is state —
    L-LSPs multiply label/LFIB entries by the class count.  RFC 3270
    documents exactly this trade (E-LSPs limited to 8 classes by the
    3-bit EXP field, L-LSPs unlimited but state-hungry).
    """
    from repro.mpls.te import TrafficEngineering
    from repro.net.address import Prefix
    from repro.qos.classifier import llsp_classifier
    from repro.qos.queues import FairQueueing
    from repro.experiments.common import three_class_queues

    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for model in ("e-lsp", "l-lsp"):
        net = Network(seed=seed)
        # Per-node L-LSP-aware classifier (falls back to EXP for E-LSPs).
        def factory(node, ifname):
            return FairQueueing(
                three_class_queues(100), llsp_classifier(node), [16.0, 4.0, 1.0]
            )
        net.default_qdisc_factory = factory

        routers = [net.add_node(Lsr(net.sim, f"r{i}")) for i in range(4)]
        for i in range(3):
            net.connect(routers[i], routers[i + 1], BOTTLENECK_BPS, 1e-3)
        tx = attach_host(net, routers[0], "10.96.0.1", name="tx")
        # One destination per class so the ingress can steer per-class LSPs.
        rx_hosts = [
            attach_host(net, routers[3], f"10.96.1.{i + 1}", name=f"rx{i}")
            for i in range(3)
        ]
        converge(net)

        te = TrafficEngineering(net, subscription=2.0)
        if model == "e-lsp":
            lsp = te.signal("all", [f"r{i}" for i in range(4)], 1e6, php=False)
            for i in range(3):
                te.autoroute(lsp, [Prefix.parse(f"10.96.1.{i + 1}/32")])
        else:
            for i in range(3):
                lsp = te.signal(f"class{i}", [f"r{i2}" for i2 in range(4)],
                                1e6, php=False, scheduling_class=i)
                te.autoroute(lsp, [Prefix.parse(f"10.96.1.{i + 1}/32")])
            # EXP deliberately zeroed: the *label* must carry the class.
            for r in routers:
                r.impose_exp = 0

        run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
        sinks = [run.sink_at(h) for h in rx_hosts]
        voice = run.add_source(
            voice_source(net.sim, tx.send, "voice", "10.96.0.1", "10.96.1.1")
        )
        data = run.add_source(
            OnOffSource(
                net.sim, tx.send, "data", "10.96.0.1", "10.96.1.2",
                payload_bytes=700, dscp=int(DSCP.AF11),
                peak_bps=4e6, mean_on_s=0.2, mean_off_s=0.3,
                rng=net.streams.stream("e9f.data"),
            )
        )
        bulk = run.add_source(
            CbrSource(
                net.sim, tx.send, "bulk", "10.96.0.1", "10.96.1.3",
                payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=6e6,
            )
        )
        run.execute(drain_s=1.0)
        v = run.stats_for(voice, sinks[0])
        lfib_entries = sum(len(r.lfib) for r in routers)
        labels_in_use = sum(r.labels.in_use for r in routers)
        raw[model] = {"voice": v, "data": run.stats_for(data, sinks[1]),
                      "bulk": run.stats_for(bulk, sinks[2]), "net": net}
        rows.append(
            {
                "model": model,
                "voice_p99_ms": round(v.p99_delay_s * 1e3, 3),
                "voice_loss%": round(v.loss_ratio * 100, 2),
                "lsps": 1 if model == "e-lsp" else 3,
                "lfib_entries": lfib_entries,
                "labels_in_use": labels_in_use,
            }
        )
    return rows, raw


def run_e9(measure_s: float = 6.0) -> dict[str, tuple[list[dict[str, Any]], dict[str, Any]]]:
    """Run every ablation; keyed by sub-study."""
    return {
        "schedulers": run_e9a_schedulers(measure_s=measure_s),
        "aqm": run_e9b_aqm(measure_s=measure_s),
        "exp_php": run_e9c_exp_php(measure_s=measure_s),
        "stack_overhead": run_e9d_stack_overhead(),
        "ibgp": run_e9e_ibgp(),
        "elsp_vs_llsp": run_e9f_elsp_llsp(measure_s=measure_s),
    }
