"""E2 — Per-class QoS: best-effort IP vs DiffServ vs DiffServ-over-MPLS.

Claim C2: plain IP "has no direct mechanism to specify QoS"; frame relay /
ATM assign a QoS level to the whole connection, and MPLS+DiffServ restores
that ability to IP backbones.  We offer a three-class mix (EF voice CBR,
AF bursty on–off data, BE greedy filler) over a congested two-core-hop
path and measure per-class delay/jitter/loss under three backbones:

* ``ip-fifo``       — plain routers, single FIFO: every class shares the
  congestion (the §2.2 problem statement).
* ``ip-diffserv``   — plain routers but class-aware scheduling on DSCP.
* ``mpls-diffserv`` — LSR backbone, LDP tunnels, DSCP copied to EXP at the
  edge, core schedules on EXP (the paper's architecture).

The shape to expect: EF delay/jitter collapse by an order of magnitude as
soon as class scheduling appears, and the MPLS variant matches the
DiffServ one while also providing the tunnel substrate the VPN needs
(QoS equivalence is the point — MPLS moves the classification into the
label so it also survives encryption, which E4 shows).
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun, make_qdisc_factory
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.qos.dscp import DSCP
from repro.routing.spf import converge
from repro.topology import Network, attach_host, build_line
from repro.traffic.generators import CbrSource, OnOffSource, voice_source

__all__ = ["run_config", "run_e2", "run_e2_load_sweep", "CONFIGS"]

BOTTLENECK_BPS = 5e6
CONFIGS = ("ip-fifo", "ip-diffserv", "mpls-diffserv")


def _build(config: str, seed: int) -> tuple[Network, Any, Any]:
    """Line backbone a - p1 - p2 - b with the config's node type + queues."""
    net = Network(seed=seed)
    if config == "ip-fifo":
        net.default_qdisc_factory = make_qdisc_factory("fifo")
    else:
        net.default_qdisc_factory = make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))

    mpls = config == "mpls-diffserv"
    if mpls:
        routers = []
        for i in range(4):
            routers.append(net.add_node(Lsr(net.sim, f"r{i}")))
        for i in range(3):
            net.connect(routers[i], routers[i + 1], BOTTLENECK_BPS, 1e-3)
    else:
        routers = build_line(net, 4, rate_bps=BOTTLENECK_BPS)

    src_host = attach_host(net, routers[0], "10.50.0.1", name="tx")
    dst_host = attach_host(net, routers[3], "10.50.0.2", name="rx")
    converge(net)
    if mpls:
        run_ldp(net)
    return net, src_host, dst_host


def run_config(
    config: str,
    seed: int = 21,
    measure_s: float = 8.0,
    streaming: bool = False,
    hybrid: bool = False,
    prebuilt: tuple[Network, Any, Any] | None = None,
) -> dict[str, Any]:
    """One config's per-class stats + labeled-hop accounting.

    ``prebuilt`` short-circuits the build: a ``(net, src_host, dst_host)``
    triple — in practice a converged network restored from a
    :mod:`repro.sim.snapshot` image by the warm-start sweep path — is used
    as-is instead of building and converging from scratch.  The network's
    RNG streams are reseeded to ``seed`` (builds consume no streams, so
    this is exactly equivalent to a cold build with that seed).

    ``streaming=True`` attaches a live :class:`repro.obs.slo.SloEngine`
    alongside the batch path; the result gains an ``"slo"`` block whose
    per-flow streaming stats are the parity subject of
    ``tests/test_obs_sketch.py`` (the batch stats stay the oracle).

    ``hybrid=True`` carries the BE bulk filler as a
    :class:`~repro.traffic.fluid.FluidAggregate` instead of a packet
    source.  The measurement flows (voice, data) stay real packets in
    both modes.  Since bulk's 6 Mb/s exceeds the 5 Mb/s bottleneck's
    headroom everywhere past the access link, the aggregate expands at
    the first core hop and the queues it contends in see real packets —
    ``tests/test_hybrid_parity.py`` pins how closely the two modes agree.
    """
    if prebuilt is not None:
        net, src_host, dst_host = prebuilt
        if net.streams.seed != seed:
            net.streams.reseed(seed)
    else:
        net, src_host, dst_host = _build(config, seed)

    engine = None
    if streaming:
        from repro.obs.slo import SloEngine

        engine = SloEngine(net.sim, window_s=0.5)
        engine.attach(net)

    run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
    sink = run.sink_at(dst_host)

    voice = run.add_source(
        voice_source(net.sim, src_host.send, "voice", "10.50.0.1", "10.50.0.2")
    )
    data = run.add_source(
        OnOffSource(
            net.sim, src_host.send, "data", "10.50.0.1", "10.50.0.2",
            payload_bytes=700, dscp=int(DSCP.AF11), proto="tcp",
            peak_bps=4e6, mean_on_s=0.2, mean_off_s=0.3,
            rng=net.streams.stream("e2.data"),
        )
    )
    if hybrid:
        from repro.traffic.fluid import FluidAggregate

        bulk = FluidAggregate(
            net.sim, "bulk", "10.50.0.1", "10.50.0.2",
            payload_bytes=1400, dscp=int(DSCP.BE), kind="cbr", rate_bps=6e6,
        )
        run.fluid_plane().add(bulk, src_host, dst_host)
    else:
        bulk = run.add_source(
            CbrSource(
                net.sim, src_host.send, "bulk", "10.50.0.1", "10.50.0.2",
                payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=6e6,
            )
        )

    run.execute(drain_s=1.0)
    result = {
        "config": config,
        "voice": run.stats_for(voice, sink),
        "data": run.stats_for(data, sink),
        "bulk": (
            run.hybrid_stats_for(bulk, sink) if hybrid
            else run.stats_for(bulk, sink)
        ),
        "net": net,
        "hybrid": hybrid,
    }
    if hybrid:
        result["fluid"] = run.fluid.summary()
    if engine is not None:
        engine.finalize()
        result["slo"] = {
            "engine": engine,
            "stats": {
                "voice": engine.stats("voice", sent=voice.sent, duration_s=measure_s),
                "data": engine.stats("data", sent=data.sent, duration_s=measure_s),
                "bulk": engine.stats("bulk", sent=bulk.sent, duration_s=measure_s),
            },
        }
    return result


def run_e2_load_sweep(
    loads: tuple[float, ...] = (0.5, 0.8, 1.0, 1.2, 1.5),
    seed: int = 22,
    measure_s: float = 5.0,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E2 *figure*: voice p99 delay as offered load sweeps past capacity.

    ``loads`` are bulk offered rates as fractions of the bottleneck.  The
    classic curve: under FIFO, voice delay tracks the shared queue and
    explodes as load crosses 1.0; under MPLS+DiffServ it stays flat at the
    EF service floor regardless of BE overload.  One row per (config,
    load), suitable for plotting delay-vs-load series.
    """
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for config in ("ip-fifo", "mpls-diffserv"):
        series = []
        for load in loads:
            net, src_host, dst_host = _build(config, seed)
            run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
            sink = run.sink_at(dst_host)
            voice = run.add_source(
                voice_source(net.sim, src_host.send, "voice",
                             "10.50.0.1", "10.50.0.2")
            )
            bulk = run.add_source(
                CbrSource(
                    net.sim, src_host.send, "bulk", "10.50.0.1", "10.50.0.2",
                    payload_bytes=1400, dscp=int(DSCP.BE),
                    rate_bps=load * BOTTLENECK_BPS,
                )
            )
            run.execute(drain_s=1.0)
            stats = run.stats_for(voice, sink)
            series.append((load, stats))
            rows.append(
                {
                    "config": config,
                    "offered_load": load,
                    "voice_p99_ms": round(stats.p99_delay_s * 1e3, 3),
                    "voice_loss%": round(stats.loss_ratio * 100, 2),
                }
            )
        raw[config] = series
    return rows, raw


def run_e2(
    seed: int = 21, measure_s: float = 8.0, hybrid: bool = False
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E2 table: config × class rows."""
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for config in CONFIGS:
        result = run_config(config, seed=seed, measure_s=measure_s, hybrid=hybrid)
        raw[config] = result
        for flow in ("voice", "data", "bulk"):
            stats = result[flow]
            rows.append({"config": config, **stats.row()})
    return rows, raw
