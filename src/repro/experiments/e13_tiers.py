"""E13 — Per-VPN service tiers: "assign a QoS level to an entire VPN".

§2.2's proposed strategy, implemented end to end: three customers buy
gold / silver / bronze tiers; their managed CPEs mark and police *all*
their traffic into the tier's class; the backbone differentiates purely
on class.  All three customers then offer the **identical** workload over
the same congested core, and the tier — nothing else — determines what
they experience.

A second check exercises the contract's teeth: a gold customer offering
3× its committed rate keeps the tier only for the committed portion; the
excess rides best effort (srTCM demotion), protecting other gold
customers from a misbehaving one.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun, make_qdisc_factory
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.routing.spf import converge
from repro.topology import Network
from repro.traffic.generators import CbrSource
from repro.vpn.pe import PeRouter
from repro.vpn.profiles import BRONZE, GOLD, SILVER, apply_profile
from repro.vpn.provision import VpnProvisioner

__all__ = ["build_tiered_network", "run_e13"]

CORE_BPS = 6e6
OFFERED_BPS = 1.5e6   # identical workload per customer; 3 x 1.5 < 6 uncongested,
                      # so a 4 Mb/s BE filler creates the contention below.


def build_tiered_network(seed: int = 131) -> dict[str, Any]:
    net = Network(seed=seed)
    net.default_qdisc_factory = make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))
    pe1 = net.add_node(PeRouter(net.sim, "pe1"))
    p1 = net.add_node(Lsr(net.sim, "p1"))
    pe2 = net.add_node(PeRouter(net.sim, "pe2"))
    net.connect(pe1, p1, CORE_BPS, 1e-3)
    net.connect(p1, pe2, CORE_BPS, 1e-3)

    prov = VpnProvisioner(net, access_rate_bps=20e6)
    customers = {}
    for tier in (GOLD, SILVER, BRONZE):
        vpn = prov.create_vpn(tier.name)
        s1 = prov.add_site(vpn, pe1)
        s2 = prov.add_site(vpn, pe2)
        customers[tier.name] = {"vpn": vpn, "sites": (s1, s2), "profile": tier}
    converge(net)
    run_ldp(net)
    prov.converge_bgp()
    for c in customers.values():
        apply_profile(c["vpn"], c["profile"])
    return {"net": net, "prov": prov, "customers": customers}


def run_e13(seed: int = 131, measure_s: float = 8.0) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E13 table: identical workloads, tier-determined outcomes."""
    ctx = build_tiered_network(seed)
    net = ctx["net"]
    run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)

    sources = {}
    sinks = {}
    for name, c in ctx["customers"].items():
        s1, s2 = c["sites"]
        h1, h2 = s1.hosts[0], s2.hosts[0]
        sinks[name] = run.sink_at(h2)
        # DSCP deliberately 0 at the source: the *tier* marks, not the app.
        sources[name] = run.add_source(
            CbrSource(net.sim, h1.send, name, str(h1.loopback), str(h2.loopback),
                      payload_bytes=700, dscp=0, rate_bps=OFFERED_BPS)
        )
    # A gold customer going 3x over contract: its excess must demote, and
    # the in-contract gold above must stay clean.
    greedy = ctx["prov"].create_vpn("gold-greedy")
    g1 = ctx["prov"].add_site(greedy, net.node("pe1"))
    g2 = ctx["prov"].add_site(greedy, net.node("pe2"))
    converge(net)
    run_ldp(net)
    ctx["prov"].converge_bgp()
    apply_profile(greedy, GOLD)
    sinks["gold-greedy"] = run.sink_at(g2.hosts[0])
    sources["gold-greedy"] = run.add_source(
        CbrSource(net.sim, g1.hosts[0].send, "gold-greedy",
                  str(g1.hosts[0].loopback), str(g2.hosts[0].loopback),
                  payload_bytes=700, dscp=0, rate_bps=3 * GOLD.cir_bps)
    )
    run.execute(drain_s=1.0)

    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {"ctx": ctx}
    for name in ("gold", "silver", "bronze", "gold-greedy"):
        stats = run.stats_for(sources[name], sinks[name])
        raw[name] = stats
        rows.append({"customer": name, **stats.row()})
    return rows, raw
