"""E3 — Forwarding cost: exact-match label lookup vs longest-prefix match.

Claim C4 (§3): "The labels enable routers and switches to forward traffic
based on information in the labels instead of having to inspect the
various fields deep within each and every packet.  The less time devices
spend inspecting traffic, the more time they have to forward it."

Two measurements:

* **Micro** — wall-clock lookups/second on the actual data structures: a
  binary-trie FIB loaded with a realistic prefix mix (sampled lengths
  /16–/24 like a provider table) versus the LFIB dict.  The LFIB wins by a
  factor that *grows with the routing-table size*, which is the argument's
  real content (an LPM is O(address bits), an exact match is O(1)).
* **Macro** — the same ratio pushed through the simulator: a line of
  routers whose ``ProcessingModel`` lookup costs are set from the micro
  measurement; packets-per-second throughput of a labeled vs an unlabeled
  path then shows the end-to-end effect.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

import numpy as np

from repro.mpls.lfib import LabelOp, Lfib, LfibEntry
from repro.net.address import IPv4Address, Prefix
from repro.routing.fib import Fib, RouteEntry

__all__ = [
    "build_random_fib",
    "build_random_lfib",
    "measure_lookup_rate",
    "run_e3",
]


def build_random_fib(n_prefixes: int, rng: np.random.Generator) -> tuple[Fib, np.ndarray]:
    """A FIB with ``n_prefixes`` random routes and addresses that hit them.

    Prefix lengths are drawn from a provider-like mix (mostly /24 with
    /16–/23 tails); returns (fib, matching address values).
    """
    fib = Fib()
    lengths = rng.choice(
        [16, 18, 20, 22, 24], size=n_prefixes, p=[0.05, 0.10, 0.15, 0.20, 0.50]
    )
    nets = rng.integers(0x0B000000, 0xDF000000, size=n_prefixes, dtype=np.int64)
    addrs = np.empty(n_prefixes, dtype=np.int64)
    for i in range(n_prefixes):
        length = int(lengths[i])
        pfx = Prefix.of(IPv4Address(int(nets[i])), length)
        fib.install(pfx, RouteEntry("eth0", None, source="bench"))
        # An address inside the prefix (random host bits).
        host = int(rng.integers(0, pfx.num_addresses))
        addrs[i] = pfx.network + host
    return fib, addrs


def build_random_lfib(n_labels: int) -> tuple[Lfib, np.ndarray]:
    """An LFIB with ``n_labels`` swap entries and the labels to look up."""
    lfib = Lfib()
    labels = np.arange(16, 16 + n_labels, dtype=np.int64)
    for label in labels:
        lfib.install(int(label), LfibEntry(LabelOp.SWAP, out_label=int(label) + 1, out_ifname="eth0"))
    return lfib, labels


def measure_lookup_rate(lookup, keys: Sequence[int], repeats: int = 3) -> float:
    """Best-of-N lookups/second for ``lookup`` over ``keys``."""
    keys = [int(k) for k in keys]
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        for k in keys:
            lookup(k)
        dt = time.perf_counter() - t0
        best = max(best, len(keys) / dt if dt > 0 else 0.0)
    return best


def run_e3(
    table_sizes: Sequence[int] = (1_000, 10_000, 50_000),
    n_lookups: int = 20_000,
    seed: int = 81,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E3 table: lookups/s for FIB-LPM vs LFIB across table sizes."""
    rng = np.random.default_rng(seed)
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for size in table_sizes:
        fib, addrs = build_random_fib(size, rng)
        lfib, labels = build_random_lfib(size)
        addr_keys = rng.choice(addrs, size=n_lookups)
        label_keys = rng.choice(labels, size=n_lookups)
        fib_rate = measure_lookup_rate(fib.lookup, addr_keys)
        lfib_rate = measure_lookup_rate(lfib.lookup, label_keys)
        raw[size] = {"fib_rate": fib_rate, "lfib_rate": lfib_rate}
        rows.append(
            {
                "table_size": size,
                "lpm_lookups_per_s": int(fib_rate),
                "label_lookups_per_s": int(lfib_rate),
                "speedup": round(lfib_rate / fib_rate, 2),
            }
        )
    return rows, raw
