"""E8 — Mixed backbone: labeled and unlabeled paths coexisting (Fig. 4).

The paper's deployment figure shows one backbone simultaneously carrying
"Labeled Packet (path 1)" and "unlabeled Packet (path 2)": MPLS "is
currently targeted for deployment in the backbone first", so during
migration only part of the network is label-switching.  We model exactly
that: a six-router line where the middle transit router of one branch is
MPLS-capable and the other is not, plus LDP's ordered control stopping
label distribution at non-MPLS routers.

Checks: (a) destinations behind the MPLS-capable segment are reached over
an LSP (label lookups observed at the transit LSRs, zero IP lookups for
that traffic mid-path); (b) destinations on the IP-only branch are reached
classically; (c) turnover — converting the remaining router to an LSR and
re-running LDP moves the second path onto labels too, with no data-plane
reconfiguration anywhere else.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.routing.router import Router
from repro.routing.spf import converge
from repro.topology import Network, attach_host
from repro.traffic.generators import CbrSource

__all__ = ["build_mixed_backbone", "run_e8"]


def build_mixed_backbone(seed: int = 71, upgrade_all: bool = False) -> dict[str, Any]:
    """Y-shaped backbone: one branch all-LSR, one with a legacy IP router.

    ::

        tx - ingress - m1(LSR) - m2(LSR) - egress1 - rx1     (path 1: labeled)
                 \\
                  n1(LSR) - n2(IP!) - egress2 - rx2          (path 2: unlabeled)
    """
    net = Network(seed=seed)
    ingress = net.add_node(Lsr(net.sim, "ingress"))
    m1 = net.add_node(Lsr(net.sim, "m1"))
    m2 = net.add_node(Lsr(net.sim, "m2"))
    egress1 = net.add_node(Lsr(net.sim, "egress1"))
    n1 = net.add_node(Lsr(net.sim, "n1"))
    legacy_cls = Lsr if upgrade_all else Router
    n2 = net.add_node(legacy_cls(net.sim, "n2"))
    egress2 = net.add_node(Lsr(net.sim, "egress2"))

    for a, b in (("ingress", "m1"), ("m1", "m2"), ("m2", "egress1"),
                 ("ingress", "n1"), ("n1", "n2"), ("n2", "egress2")):
        net.connect(a, b, 10e6, 1e-3)

    tx = attach_host(net, ingress, "10.80.0.1", name="tx")
    rx1 = attach_host(net, egress1, "10.80.1.1", name="rx1")
    rx2 = attach_host(net, egress2, "10.80.2.1", name="rx2")
    converge(net)
    ldp = run_ldp(net)
    return {
        "net": net, "tx": tx, "rx1": rx1, "rx2": rx2, "ldp": ldp,
        "ingress": ingress, "m1": m1, "m2": m2, "n1": n1, "n2": n2,
    }


def _lookup_census(ctx: dict[str, Any]) -> dict[str, int]:
    out = {}
    for name in ("ingress", "m1", "m2", "n1", "n2"):
        node = ctx[name]
        out[f"{name}.label_lookups"] = node.lfib.lookups if isinstance(node, Lsr) else 0
        out[f"{name}.ip_lookups"] = node.fib.lookups
    return out


def run_e8(
    seed: int = 71, measure_s: float = 3.0
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E8 table: per-path delivery + how each hop looked packets up."""
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for upgrade in (False, True):
        ctx = build_mixed_backbone(seed, upgrade_all=upgrade)
        net = ctx["net"]
        run = ExperimentRun(net, warmup_s=0.1, measure_s=measure_s)
        sink1 = run.sink_at(ctx["rx1"])
        sink2 = run.sink_at(ctx["rx2"])
        f1 = run.add_source(
            CbrSource(net.sim, ctx["tx"].send, "path1", "10.80.0.1", "10.80.1.1",
                      payload_bytes=500, rate_bps=2e6)
        )
        f2 = run.add_source(
            CbrSource(net.sim, ctx["tx"].send, "path2", "10.80.0.1", "10.80.2.1",
                      payload_bytes=500, rate_bps=2e6)
        )
        run.execute(drain_s=0.3)
        census = _lookup_census(ctx)
        label = "all-mpls" if upgrade else "mixed"
        raw[label] = {"ctx": ctx, "census": census,
                      "f1": run.stats_for(f1, sink1), "f2": run.stats_for(f2, sink2)}
        rows.append({
            "deployment": label, "flow": "path1",
            "recv": sink1.received("path1"), "sent": f1.sent,
            "m1_label_lkups": census["m1.label_lookups"],
            "m1_ip_lkups": census["m1.ip_lookups"],
            "n2_label_lkups": census["n2.label_lookups"],
            "n2_ip_lkups": census["n2.ip_lookups"],
        })
        rows.append({
            "deployment": label, "flow": "path2",
            "recv": sink2.received("path2"), "sent": f2.sent,
            "m1_label_lkups": census["m1.label_lookups"],
            "m1_ip_lkups": census["m1.ip_lookups"],
            "n2_label_lkups": census["n2.label_lookups"],
            "n2_ip_lkups": census["n2.ip_lookups"],
        })
    return rows, raw
