"""EH — Hybrid scale: million-flow QoS experiments at paper-scale loads.

E1 provisions 1000 sites, but the packet plane tops out at thousands of
concurrent flows — each 8 kb/s trickle costs the full per-packet event
chain.  This scenario measures the hybrid plane's point: a line backbone
fat enough that aggregate load stays under the fluid headroom, many
thousands of small CBR flows offered either as individual packet
sources (``mode="pure"``) or as a handful of
:class:`~repro.traffic.fluid.FluidAggregate` bundles (``mode="hybrid"``),
plus one real probe flow in both modes so there is always a packet-level
delay measurement to compare.

``run_scale`` returns wall-clock, so ``benchmarks/
test_hybrid_performance.py`` can pin the ≥10× end-to-end speedup at
100k flows and record the million-flow smoke that pure-packet mode
cannot finish (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from typing import Any

from repro.experiments.common import ExperimentRun
from repro.routing.spf import converge
from repro.topology import Network, attach_host, build_line
from repro.traffic.generators import CbrSource

__all__ = ["run_scale", "run_hybrid_demo"]

CORE_BPS = 2e9
FLOW_RATE_BPS = 8e3
PAYLOAD_BYTES = 200


def run_scale(
    mode: str = "hybrid",
    n_flows: int = 100_000,
    n_aggregates: int = 10,
    seed: int = 77,
    measure_s: float = 0.4,
    core_bps: float | None = None,
) -> dict[str, Any]:
    """One scale run: ``n_flows`` × 8 kb/s CBR over a fat line.

    ``core_bps`` defaults to 2 Gb/s, or — when the offered load would
    crowd that — the smallest round power of ten keeping the aggregate
    under the fluid headroom (the million-flow smoke offers 8 Gb/s and
    gets a 20 Gb/s line).  Under headroom, hybrid aggregates stay fully
    fluid and only the probe flow rides the packet plane.  Wall-clock
    covers build + run, since source construction is part of what
    scaling pure-packet mode actually costs.
    """
    if mode not in ("pure", "hybrid"):
        raise ValueError(f"unknown mode {mode!r}")
    if mode == "hybrid" and n_flows % n_aggregates:
        raise ValueError("n_flows must divide evenly into n_aggregates")
    if core_bps is None:
        core_bps = CORE_BPS
        while n_flows * FLOW_RATE_BPS > 0.5 * core_bps:
            core_bps *= 10.0
    t0 = time.perf_counter()

    net = Network(seed=seed)
    routers = build_line(net, 3, rate_bps=core_bps)
    tx = attach_host(net, routers[0], "10.200.0.1", name="tx", rate_bps=core_bps)
    rx = attach_host(net, routers[2], "10.200.0.2", name="rx", rate_bps=core_bps)
    converge(net)

    run = ExperimentRun(net, warmup_s=0.1, measure_s=measure_s)
    sink = run.sink_at(rx)
    probe = run.add_source(
        CbrSource(
            net.sim, tx.send, "probe", "10.200.0.1", "10.200.0.2",
            payload_bytes=PAYLOAD_BYTES, rate_bps=64e3,
        )
    )

    aggregates: list[Any] = []
    sources: list[CbrSource] = []
    if mode == "hybrid":
        from repro.traffic.fluid import FluidAggregate

        per_agg = n_flows // n_aggregates
        plane = run.fluid_plane()
        for i in range(n_aggregates):
            agg = FluidAggregate(
                net.sim, f"agg{i}", "10.200.0.1", "10.200.0.2",
                n_flows=per_agg, payload_bytes=PAYLOAD_BYTES,
                kind="cbr", rate_bps=FLOW_RATE_BPS,
            )
            plane.add(agg, tx, rx)
            aggregates.append(agg)
    else:
        # Stagger each flow's phase uniformly across one inter-packet gap:
        # 100k CBR trickles starting on the same instant would be a
        # synchronized 100k-packet burst no real population produces (and
        # no access queue survives).  Uniform phases also match the fluid
        # abstraction's constant-rate view of the aggregate.
        gap_s = (PAYLOAD_BYTES + 20) * 8.0 / FLOW_RATE_BPS
        for i in range(n_flows):
            sources.append(
                run.add_source(
                    CbrSource(
                        net.sim, tx.send, ("f", i), "10.200.0.1", "10.200.0.2",
                        payload_bytes=PAYLOAD_BYTES, rate_bps=FLOW_RATE_BPS,
                    ),
                    start=run.warmup_s + gap_s * i / n_flows,
                )
            )

    run.execute(drain_s=0.1)
    wall_s = time.perf_counter() - t0

    if mode == "hybrid":
        offered = sum(a.sent for a in aggregates)
        delivered = sum(a.fluid_delivered_packets for a in aggregates)
        delivered += sum(
            sink.record(a.flow).count for a in aggregates if a.expanded_sent
        )
    else:
        offered = sum(s.sent for s in sources)
        delivered = sum(sink.record(s.flow).count for s in sources)

    probe_stats = run.stats_for(probe, sink)
    return {
        "mode": mode,
        "n_flows": n_flows,
        "offered_pkts": offered,
        "delivered_pkts": delivered,
        "offered_bps": n_flows * FLOW_RATE_BPS,
        "probe": probe_stats,
        "wall_s": wall_s,
        "net": net,
    }


def run_hybrid_demo(
    n_flows: int = 10_000, seed: int = 77, measure_s: float = 0.4
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The EH table: pure vs hybrid at the same flow count."""
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for mode in ("pure", "hybrid"):
        res = run_scale(mode=mode, n_flows=n_flows, seed=seed, measure_s=measure_s)
        raw[mode] = res
        rows.append(
            {
                "mode": mode,
                "flows": n_flows,
                "offered_Mbps": round(res["offered_bps"] / 1e6, 1),
                "delivered_pkts": res["delivered_pkts"],
                "probe_p99_ms": round(1e3 * res["probe"].p99_delay_s, 3),
                "wall_s": round(res["wall_s"], 2),
            }
        )
    return rows, raw
