"""E4 — Encryption vs QoS: the IPsec overlay against the MPLS VPN.

Claim C3: "during the development of the second encryption tunnel, all
information including the IP and MAC addresses are encrypted thus erasing
any hope one may have to control QoS."  Structurally: once traffic enters
an ESP tunnel, interior classifiers see only the outer header.  If the
gateway does not copy the inner DSCP outward, every customer flow lands in
one behaviour aggregate and the voice class dies under congestion.  The
MPLS VPN carries the class in the (cleartext) EXP bits instead, so interior
scheduling keeps working even though the customer payload could be
encrypted end-to-end.

Configs over the same congested two-core-hop backbone with WFQ queues:

* ``ipsec-blind`` — ESP tunnel, outer DSCP = 0 (the default of early
  implementations): voice drowns with the bulk traffic.
* ``ipsec-copy``  — ESP tunnel with RFC 2983 DSCP copy-out: aggregate QoS
  restored (at the cost of revealing the class, a known traffic-analysis
  trade-off).
* ``mpls-vpn``    — BGP/MPLS VPN with DSCP→EXP mapping at the PE.

Each row also reports the tunnel byte overhead and the IKE handshake cost
(messages + latency) the MPLS VPN does not pay.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun, make_qdisc_factory
from repro.mpls.ldp import run_ldp
from repro.mpls.lsr import Lsr
from repro.net.node import ProcessingModel
from repro.qos.dscp import DSCP
from repro.routing.spf import converge
from repro.topology import Network, attach_host, build_line
from repro.traffic.generators import CbrSource, OnOffSource, voice_source
from repro.vpn.ipsec import IKEV1_HANDSHAKE_MESSAGES, IpsecGateway, esp_overhead_bytes
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner

__all__ = ["run_ipsec_config", "run_mpls_config", "run_e4", "CONFIGS"]

BOTTLENECK_BPS = 5e6
CRYPTO_BPS = 40e6  # software 3DES-class throughput of the era
CONFIGS = ("ipsec-blind", "ipsec-copy", "mpls-vpn")


def _mix(run: ExperimentRun, send, src_addr: str, dst_addr: str, stream_tag: str):
    net = run.net
    voice = run.add_source(voice_source(net.sim, send, "voice", src_addr, dst_addr))
    data = run.add_source(
        OnOffSource(
            net.sim, send, "data", src_addr, dst_addr,
            payload_bytes=700, dscp=int(DSCP.AF11), proto="tcp",
            peak_bps=4e6, mean_on_s=0.2, mean_off_s=0.3,
            rng=net.streams.stream(f"{stream_tag}.data"),
        )
    )
    bulk = run.add_source(
        CbrSource(
            net.sim, send, "bulk", src_addr, dst_addr,
            payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=6e6,
        )
    )
    return voice, data, bulk


def run_ipsec_config(
    copy_dscp: bool, seed: int = 31, measure_s: float = 8.0
) -> dict[str, Any]:
    """IPsec overlay over a DiffServ IP backbone."""
    net = Network(seed=seed)
    net.default_qdisc_factory = make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))
    routers = build_line(net, 2, prefix="p", rate_bps=BOTTLENECK_BPS)

    crypto = ProcessingModel(crypto_bps=CRYPTO_BPS)
    gw1 = net.add_node(IpsecGateway(net.sim, "gw1", processing=crypto))
    gw2 = net.add_node(IpsecGateway(net.sim, "gw2", processing=crypto))
    net.connect(gw1, routers[0], BOTTLENECK_BPS, 1e-3)
    net.connect(gw2, routers[1], BOTTLENECK_BPS, 1e-3)

    h1 = attach_host(net, gw1, "10.1.0.1", name="tx", advertise=False)
    h2 = attach_host(net, gw2, "10.2.0.1", name="rx", advertise=False)
    converge(net)

    rtt = 4 * 2e-3  # gw-gw round trip through the backbone
    gw1.add_policy("10.2.0.0/24", gw2.loopback)
    gw2.add_policy("10.1.0.0/24", gw1.loopback)
    sa1 = gw1.establish_sa(gw2.loopback, rtt_s=rtt, copy_dscp=copy_dscp)
    sa2 = gw2.establish_sa(gw1.loopback, rtt_s=rtt, copy_dscp=copy_dscp)

    run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
    sink = run.sink_at(h2)
    voice, data, bulk = _mix(run, h1.send, "10.1.0.1", "10.2.0.1", "e4.ipsec")
    run.execute(drain_s=1.0)
    return {
        "config": "ipsec-copy" if copy_dscp else "ipsec-blind",
        "voice": run.stats_for(voice, sink),
        "data": run.stats_for(data, sink),
        "bulk": run.stats_for(bulk, sink),
        "ike_messages": sa1.ike_messages + sa2.ike_messages,
        "ike_latency_s": (IKEV1_HANDSHAKE_MESSAGES / 2.0) * rtt,
        # Per-packet tunnel overhead for a voice packet: outer IP header +
        # ESP framing around the 180-byte inner datagram.
        "voice_overhead_bytes": 20 + esp_overhead_bytes(180),
        "encapsulated": sa1.encapsulated + sa2.encapsulated,
        "net": net,
    }


def run_mpls_config(seed: int = 33, measure_s: float = 8.0) -> dict[str, Any]:
    """BGP/MPLS VPN over the same backbone geometry."""
    net = Network(seed=seed)
    net.default_qdisc_factory = make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))
    pe1 = net.add_node(PeRouter(net.sim, "pe1"))
    p1 = net.add_node(Lsr(net.sim, "p1"))
    p2 = net.add_node(Lsr(net.sim, "p2"))
    pe2 = net.add_node(PeRouter(net.sim, "pe2"))
    net.connect(pe1, p1, BOTTLENECK_BPS, 1e-3)
    net.connect(p1, p2, BOTTLENECK_BPS, 1e-3)
    net.connect(p2, pe2, BOTTLENECK_BPS, 1e-3)

    prov = VpnProvisioner(net, access_rate_bps=BOTTLENECK_BPS)
    vpn = prov.create_vpn("corp")
    s1 = prov.add_site(vpn, pe1, prefix="10.1.0.0/24")
    s2 = prov.add_site(vpn, pe2, prefix="10.2.0.0/24")
    converge(net)
    run_ldp(net)
    prov.converge_bgp()

    h1, h2 = s1.hosts[0], s2.hosts[0]
    src_addr, dst_addr = str(h1.loopback), str(h2.loopback)

    run = ExperimentRun(net, warmup_s=0.5, measure_s=measure_s)
    sink = run.sink_at(h2)
    voice, data, bulk = _mix(run, h1.send, src_addr, dst_addr, "e4.mpls")
    run.execute(drain_s=1.0)
    return {
        "config": "mpls-vpn",
        "voice": run.stats_for(voice, sink),
        "data": run.stats_for(data, sink),
        "bulk": run.stats_for(bulk, sink),
        "ike_messages": 0,
        "ike_latency_s": 0.0,
        # Two-level label stack = 8 bytes on the wire.
        "voice_overhead_bytes": 8,
        "encapsulated": 0,
        "net": net,
    }


def run_e4(seed: int = 31, measure_s: float = 8.0) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E4 table: config × class + tunnel-cost columns."""
    results = [
        run_ipsec_config(copy_dscp=False, seed=seed, measure_s=measure_s),
        run_ipsec_config(copy_dscp=True, seed=seed, measure_s=measure_s),
        run_mpls_config(seed=seed + 2, measure_s=measure_s),
    ]
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for result in results:
        raw[result["config"]] = result
        for flow in ("voice", "data", "bulk"):
            rows.append(
                {
                    "config": result["config"],
                    **result[flow].row(),
                    "ovh_B": result["voice_overhead_bytes"],
                    "ike_msgs": result["ike_messages"],
                }
            )
    return rows, raw
