"""E11 — Resilience to link failure: IGP reconvergence vs MPLS fast reroute.

The paper sells MPLS on avoiding "congested, constrained **or disabled**
links" (§3).  The interesting question is *how fast*: after a link dies,
destination-based IP routing blackholes traffic until the IGP re-floods
and every router re-runs SPF — seconds with year-2000 OSPF timers — while
an RSVP-TE bypass tunnel pre-signaled around the link restores forwarding
with one local LFIB write at the point of local repair.

We run a 2 Mb/s CBR flow over the fish's bottom branch, cut G-H mid-run,
and count packets lost until forwarding resumes under three recovery
regimes:

* ``igp-default``  — reconvergence after 5 s (hello/dead-timer detection);
* ``igp-tuned``    — reconvergence after 1 s (aggressively tuned IGP);
* ``frr``          — pre-signaled bypass, 50 ms loss-of-light detection.

Expected shape: outage (lost packets ÷ packet rate) tracks the recovery
delay; FRR is two orders of magnitude better than default IGP timers.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import ExperimentRun
from repro.mpls.frr import FastReroute
from repro.mpls.ldp import reset_ldp, run_ldp
from repro.mpls.lsr import Lsr
from repro.mpls.te import TrafficEngineering
from repro.net.address import Prefix
from repro.routing.spf import converge, reconverge
from repro.topology import Network, attach_host, build_fish
from repro.traffic.generators import CbrSource

__all__ = ["run_variant", "run_e11", "VARIANTS"]

FLOW_BPS = 2e6
FAIL_AT = 2.0
VARIANTS = (
    ("igp-default", "igp", 5.0),
    ("igp-tuned", "igp", 1.0),
    ("frr", "frr", 0.050),
)


def _build(seed: int) -> dict[str, Any]:
    net = Network(seed=seed)
    nodes = build_fish(
        net, rate_bps=10e6, trunk_rate_bps=30e6,
        node_factory=lambda n, name: n.add_node(Lsr(n.sim, name)),
    )
    tx = attach_host(net, nodes["A"], "10.110.0.1", name="tx")
    rx = attach_host(net, nodes["F"], "10.110.0.2", name="rx")
    converge(net)
    return {"net": net, "nodes": nodes, "tx": tx, "rx": rx}


def run_variant(
    name: str, mode: str, recovery_delay_s: float,
    seed: int = 111, measure_s: float = 10.0,
    trace_spans: bool = False,
) -> dict[str, Any]:
    """One recovery regime; returns loss accounting around the failure.

    With ``trace_spans=True`` a :class:`repro.obs.spans.ConvergenceTracer`
    records the causal chain from the link-state change through the
    control-plane repair to the first correctly-forwarded healing probe at
    ``rx`` — the data-plane-observed healing time.  The result then gains
    ``"tracer"``, ``"spans"`` and ``"healing"`` entries.
    """
    ctx = _build(seed)
    net = ctx["net"]

    tracer = None
    if trace_spans:
        from repro.obs.spans import ConvergenceTracer

        tracer = ConvergenceTracer(net).attach()
        tracer.add_watch(
            ctx["tx"], ctx["rx"], "10.110.0.1", "10.110.0.2", label=name,
        )

    if mode == "frr":
        te = TrafficEngineering(net)
        lsp = te.signal("prim", ["A", "B", "G", "H", "E", "F"], FLOW_BPS, php=False)
        te.autoroute(lsp, [Prefix.parse("10.110.0.2/32")])
        frr = FastReroute(te)
        frr.protect_lsp(lsp)

        def recover() -> None:
            frr.trigger_link_failure("G", "H")
    else:
        run_ldp(net)

        def recover() -> None:
            reconverge(net)
            reset_ldp(net)
            run_ldp(net)

    def fail() -> None:
        net.link_between("G", "H").set_up(False)
        net.sim.schedule(recovery_delay_s, recover)

    net.sim.schedule(FAIL_AT, fail)

    run = ExperimentRun(net, warmup_s=0.2, measure_s=measure_s)
    sink = run.sink_at(ctx["rx"])
    src = run.add_source(
        CbrSource(net.sim, ctx["tx"].send, "probe", "10.110.0.1", "10.110.0.2",
                  payload_bytes=500, rate_bps=FLOW_BPS)
    )
    run.execute(drain_s=0.5)

    rec = sink.record("probe")
    lost = src.sent - rec.count
    pkt_rate = FLOW_BPS / ((500 + 20) * 8)
    result = {
        "variant": name,
        "recovery_delay_s": recovery_delay_s,
        "sent": src.sent,
        "received": rec.count,
        "lost": lost,
        "outage_s": lost / pkt_rate,
        "net": net,
    }
    if tracer is not None:
        result["tracer"] = tracer
        result["spans"] = tracer.spans
        result["healing"] = [w.healings for w in tracer.watches]
    return result


def run_e11(seed: int = 111, measure_s: float = 10.0) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E11 table: loss/outage per recovery regime."""
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for name, mode, delay in VARIANTS:
        result = run_variant(name, mode, delay, seed=seed, measure_s=measure_s)
        raw[name] = result
        rows.append(
            {
                "variant": name,
                "recovery_delay_s": delay,
                "sent": result["sent"],
                "lost": result["lost"],
                "outage_s": round(result["outage_s"], 3),
            }
        )
    return rows, raw
