"""E1 — Control-plane scalability: overlay circuits vs BGP/MPLS VPN state.

Reproduces the paper's §2.1 arithmetic *and* demonstrates it on live
state: a full-mesh overlay VPN with N sites needs N(N−1)/2 virtual
circuits (45 at N=10, 19 900 at N=200), each holding state at every hop,
while the MPLS VPN adds only per-site state at the attachment PEs and
reuses one shared set of PE–PE LSPs for every customer.

For each N we build both worlds on the same 12-node reference backbone:

* **Overlay**: N CE switches round-robined across the 8 edge routers,
  then a full mesh of provisioned circuits (state installed hop-by-hop,
  signaling messages counted).
* **MPLS VPN**: N sites provisioned into one VPN, LDP tunnels for the PE
  loopbacks, MP-BGP full mesh across the PEs.

The row compares circuits, total state entries, worst single-node state,
and control messages.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Sequence

from repro.mpls.lsr import Lsr
from repro.mpls.ldp import run_ldp
from repro.routing.spf import converge
from repro.topology import Network, build_backbone
from repro.vpn.overlay import OverlayVpnBuilder, VcRouter, expected_full_mesh_circuits
from repro.vpn.pe import PeRouter
from repro.vpn.provision import VpnProvisioner

__all__ = ["overlay_base", "overlay_census", "mpls_base", "mpls_census", "run_e1"]

EDGE_ROUTERS = [f"E{i}" for i in range(1, 9)]


def _overlay_network(n_sites: int, seed: int = 11) -> tuple[Network, list[str]]:
    """Backbone of VC switches + one VC-switch CE per site."""
    net = Network(seed=seed)
    build_backbone(net, node_factory=lambda n, name: n.add_node(VcRouter(n.sim, name)))
    ce_names = []
    for i in range(n_sites):
        name = f"ce{i}"
        ce = VcRouter(net.sim, name)
        net.add_node(ce)
        net.connect(ce, EDGE_ROUTERS[i % len(EDGE_ROUTERS)], 2e6, 1e-3)
        ce_names.append(name)
    converge(net)
    return net, ce_names


def overlay_base(n_sites: int, seed: int = 11) -> dict[str, Any]:
    """The expensive phase of :func:`overlay_census`, split out so the
    warm-start sweep can snapshot it once: backbone + CEs + the provisioned
    full mesh.  Returns the ctx dict ``overlay_census(prebuilt=...)`` takes."""
    net, ce_names = _overlay_network(n_sites, seed)
    builder = OverlayVpnBuilder(net)
    # Paper-scale runs (N=1000 → 999 000 VCs) keep the census but not one
    # VirtualCircuit record per VC.
    result = builder.build_full_mesh(ce_names, keep_circuits=False)
    return {"net": net, "ce_names": ce_names, "result": result}


def overlay_census(
    n_sites: int, seed: int = 11, prebuilt: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Provision the full-mesh overlay and count everything.

    ``prebuilt`` (a :func:`overlay_base` ctx, typically restored from a
    :mod:`repro.sim.snapshot` image) skips straight to the counting —
    ``wall_s`` then times only the census, not the provisioning."""
    t0 = perf_counter()
    ctx = prebuilt if prebuilt is not None else overlay_base(n_sites, seed)
    result = ctx["result"]
    wall_s = perf_counter() - t0
    backbone_state = sum(
        entries
        for name, entries in result.state_entries_by_node.items()
        if not name.startswith("ce")
    )
    return {
        "sites": n_sites,
        "circuits": result.circuit_count,
        "formula": expected_full_mesh_circuits(n_sites),
        "state_total": result.total_state_entries,
        "state_backbone": backbone_state,
        "state_max_node": result.max_state_on_one_node,
        "signaling_msgs": result.signaling_messages,
        "wall_s": wall_s,
    }


def _mpls_network(seed: int = 13) -> tuple[Network, dict[str, Lsr]]:
    net = Network(seed=seed)

    def factory(n: Network, name: str) -> Lsr:
        cls = PeRouter if name.startswith("E") else Lsr
        return n.add_node(cls(n.sim, name))  # type: ignore[return-value]

    nodes = build_backbone(net, node_factory=factory)
    return net, nodes


def mpls_base(
    n_sites: int,
    seed: int = 13,
    route_reflector: str | None = None,
    rr_clusters=None,
) -> dict[str, Any]:
    """The expensive phase of :func:`mpls_census`, split out so the
    warm-start sweep can snapshot it once: provisioned + converged VPN with
    the LDP/BGP result records.  ``route_reflector``/``rr_clusters`` select
    the iBGP session topology (default full mesh) — the E15 churn storms
    reuse this base under each layout.  Returns the ctx dict
    ``mpls_census(prebuilt=...)`` takes."""
    net, nodes = _mpls_network(seed)
    prov = VpnProvisioner(net)
    vpn = prov.create_vpn("corp")
    for i in range(n_sites):
        prov.add_site(vpn, nodes[EDGE_ROUTERS[i % len(EDGE_ROUTERS)]], num_hosts=0)  # type: ignore[arg-type]
    converge(net)
    ldp = run_ldp(net)
    bgp = prov.converge_bgp(route_reflector=route_reflector, rr_clusters=rr_clusters)
    return {"net": net, "nodes": nodes, "prov": prov, "ldp": ldp, "bgp": bgp}


def mpls_census(
    n_sites: int, seed: int = 13, prebuilt: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Provision the same N sites as a BGP/MPLS VPN and count state.

    ``prebuilt`` (a :func:`mpls_base` ctx, typically restored from a
    :mod:`repro.sim.snapshot` image) skips straight to the counting —
    ``wall_s`` then times only the census, not the provisioning."""
    t0 = perf_counter()
    ctx = prebuilt if prebuilt is not None else mpls_base(n_sites, seed)
    nodes, prov, ldp, bgp = ctx["nodes"], ctx["prov"], ctx["ldp"], ctx["bgp"]
    census = prov.state_census()
    wall_s = perf_counter() - t0
    # Core (P) routers hold *zero* per-VPN state — only LDP transport state
    # that is shared by every VPN; count it separately to make that visible.
    p_state = sum(
        len(nodes[f"P{i}"].lfib) for i in range(1, 5)
    )
    return {
        "sites": n_sites,
        "pes": census["pes"],
        "vrf_routes_total": census["vrf_routes_total"],
        "core_per_vpn_state": 0,
        "core_ldp_state": p_state,
        "bgp_sessions": bgp.sessions,
        "bgp_updates": bgp.updates_sent,
        "ldp_sessions": ldp.sessions,
        "ldp_msgs": ldp.mapping_messages,
        "wall_s": wall_s,
    }


def run_e1(
    site_counts: Sequence[int] = (10, 50, 100, 200),
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """The E1 table: one row per N, overlay vs MPLS side by side.

    Pass ``site_counts=(500, 1000)`` for the paper-scale runs; the census
    wall-clock lands in each row so the benchmark suite can compare the
    overlay's O(N²) provisioning time against the MPLS VPN's O(N).
    """
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {"overlay": {}, "mpls": {}}
    for n in site_counts:
        ov = overlay_census(n)
        mp = mpls_census(n)
        raw["overlay"][n] = ov
        raw["mpls"][n] = mp
        rows.append(
            {
                "sites": n,
                "overlay_VCs": ov["circuits"],
                "N(N-1)/2": ov["formula"],
                "overlay_state": ov["state_total"],
                "overlay_max_node": ov["state_max_node"],
                "overlay_sig_msgs": ov["signaling_msgs"],
                "mpls_vrf_routes": mp["vrf_routes_total"],
                "mpls_core_vpn_state": mp["core_per_vpn_state"],
                "bgp_updates": mp["bgp_updates"],
                "ldp_msgs": mp["ldp_msgs"],
                "overlay_wall_s": ov["wall_s"],
                "mpls_wall_s": mp["wall_s"],
            }
        )
    return rows, raw
