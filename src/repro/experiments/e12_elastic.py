"""E12 — Elastic (closed-loop) traffic under AQM, and class protection.

Two sub-questions the 1999/2000 QoS literature cared about, applied to
this architecture with *reactive* traffic instead of open-loop load:

* **E12a — AQM with closed loops.**  Four Reno-like flows share a 5 Mb/s
  bottleneck under DropTail vs RED.  With closed loops RED's early random
  drops keep the standing queue (and hence RTT) low while the flows' AIMD
  keeps the pipe full; DropTail fills the whole buffer before anybody
  backs off, so goodput is similar but queueing delay is far worse — the
  actual claim of the RED paper, reproducible only with elastic sources.
* **E12b — voice vs elastic.**  A voice flow shares the bottleneck with
  aggressive elastic flows; FIFO lets the adaptive flows bury the voice,
  while the EF class under WFQ is untouched no matter how hard TCP pushes
  — the VPN SLA story holds against greedy *adaptive* traffic too.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import make_qdisc_factory
from repro.metrics.probes import ProbeAgent
from repro.qos.queues import DropTailFifo
from repro.qos.red import RedParams, RedQueueManager
from repro.routing.spf import converge
from repro.topology import Network, attach_host, build_line
from repro.traffic.elastic import ElasticSource

__all__ = ["run_e12a_aqm", "run_e12b_voice_vs_elastic", "run_e12"]

BOTTLENECK_BPS = 5e6
N_FLOWS = 4


def _elastic_testbed(seed: int, qdisc_factory) -> dict[str, Any]:
    net = Network(seed=seed)
    net.default_qdisc_factory = qdisc_factory
    routers = build_line(net, 3, rate_bps=BOTTLENECK_BPS)
    tx = attach_host(net, routers[0], "10.120.0.1", name="tx", rate_bps=100e6)
    rx = attach_host(net, routers[2], "10.120.0.2", name="rx", rate_bps=100e6)
    converge(net)
    return {"net": net, "tx": tx, "rx": rx, "routers": routers}


def run_e12a_aqm(
    seed: int = 121,
    duration_s: float = 15.0,
    background_bps: float = 0.0,
    hybrid: bool = False,
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """DropTail vs RED under four competing Reno flows.

    ``background_bps`` adds an open-loop BE filler sharing the
    bottleneck: as a real :class:`CbrSource` normally, or — with
    ``hybrid=True`` — as a fully-fluid aggregate (it stays under the
    bottleneck's headroom) whose load the elastic flows see only through
    the interface's reduced effective rate and the qdisc's standing
    backlog.  This exercises the fluid *background* path rather than the
    expansion path: AQM and AIMD react to analytic load.
    """
    cap_bytes = 100 * 1500
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for kind in ("droptail", "red"):
        net_seed = seed

        def factory(node, ifname, _kind=kind):
            if _kind == "droptail":
                return DropTailFifo(capacity_packets=None, capacity_bytes=cap_bytes)
            rng_holder = getattr(factory, "_rng", None)
            return DropTailFifo(
                capacity_packets=None, capacity_bytes=cap_bytes,
                drop_policy=RedQueueManager(
                    RedParams(min_th=cap_bytes // 5, max_th=(4 * cap_bytes) // 5,
                              max_p=0.03),
                    factory._rng,  # type: ignore[attr-defined]
                ),
            )

        ctx = None
        net = Network(seed=net_seed)
        factory._rng = net.streams.stream("e12.red")  # type: ignore[attr-defined]
        net.default_qdisc_factory = factory
        routers = build_line(net, 3, rate_bps=BOTTLENECK_BPS)
        tx = attach_host(net, routers[0], "10.120.0.1", name="tx", rate_bps=100e6)
        rx = attach_host(net, routers[2], "10.120.0.2", name="rx", rate_bps=100e6)
        converge(net)

        flows = [
            ElasticSource(net.sim, tx, rx, "10.120.0.1", "10.120.0.2",
                          flow=f"tcp{i}", dst_port=8000 + i)
            for i in range(N_FLOWS)
        ]
        # A delay probe rides along to measure the standing queue.
        probe = ProbeAgent(net.sim, tx, rx, "10.120.0.1", "10.120.0.2",
                           dscp=0, interval_s=0.05)
        for i, f in enumerate(flows):
            f.start(0.1 * i)   # staggered starts avoid lockstep
        probe.start(1.0, stop_at=duration_s)

        background = None
        if background_bps > 0.0 and hybrid:
            from repro.traffic.fluid import FluidAggregate, FluidRouter

            background = FluidAggregate(
                net.sim, "bg", "10.120.0.1", "10.120.0.2",
                payload_bytes=1400, kind="cbr", rate_bps=background_bps,
            )
            router = FluidRouter(net)
            router.add(background, tx, rx)
            router.start(0.0, stop_at=duration_s)
        elif background_bps > 0.0:
            from repro.traffic.generators import CbrSource

            background = CbrSource(
                net.sim, tx.send, "bg", "10.120.0.1", "10.120.0.2",
                payload_bytes=1400, rate_bps=background_bps,
            )
            background.start(0.0, stop_at=duration_s)

        net.run(until=duration_s + 0.5)

        goodput = sum(f.goodput_bps(duration_s) for f in flows)
        raw[kind] = {
            "flows": flows, "probe": probe, "net": net,
            "background": background,
        }
        row = {
            "aqm": kind,
            "goodput_kbps": round(goodput / 1e3, 1),
            "utilization%": round(100 * goodput / BOTTLENECK_BPS, 1),
            "p50_delay_ms": round(1e3 * probe.delay_percentile(50), 2),
            "p95_delay_ms": round(1e3 * probe.delay_percentile(95), 2),
            "retransmits": sum(f.retransmits for f in flows),
            "timeouts": sum(f.timeouts for f in flows),
        }
        if background is not None:
            row["bg_kbps"] = round(background_bps / 1e3, 1)
        rows.append(row)
    return rows, raw


def run_e12b_voice_vs_elastic(
    seed: int = 123, duration_s: float = 12.0
) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """A voice probe against four greedy Reno flows, FIFO vs WFQ-on-DSCP."""
    rows: list[dict[str, Any]] = []
    raw: dict[str, Any] = {}
    for kind in ("fifo", "wfq"):
        factory = (
            make_qdisc_factory("fifo")
            if kind == "fifo"
            else make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))
        )
        ctx = _elastic_testbed(seed, factory)
        net, tx, rx = ctx["net"], ctx["tx"], ctx["rx"]
        flows = [
            ElasticSource(net.sim, tx, rx, "10.120.0.1", "10.120.0.2",
                          flow=f"tcp{i}", dst_port=8000 + i)
            for i in range(N_FLOWS)
        ]
        voice = ProbeAgent(net.sim, tx, rx, "10.120.0.1", "10.120.0.2",
                           dscp=46, interval_s=0.020, payload_bytes=160)
        for i, f in enumerate(flows):
            f.start(0.1 * i)
        voice.start(1.0, stop_at=duration_s)
        net.run(until=duration_s + 0.5)
        goodput = sum(f.goodput_bps(duration_s) for f in flows)
        raw[kind] = {"flows": flows, "voice": voice, "net": net}
        rows.append(
            {
                "scheduler": kind,
                "voice_p95_ms": round(1e3 * voice.delay_percentile(95), 2),
                "voice_loss%": round(100 * voice.loss_ratio(), 2),
                "elastic_goodput_kbps": round(goodput / 1e3, 1),
            }
        )
    return rows, raw


def run_e12(
    duration_s: float = 15.0, hybrid: bool = False
) -> dict[str, tuple[list[dict[str, Any]], dict[str, Any]]]:
    # Hybrid mode adds a 1 Mb/s filler so the fluid background path has
    # something to carry; pure runs keep the historical zero-background
    # shape unless asked.
    return {
        "aqm": run_e12a_aqm(
            duration_s=duration_s,
            background_bps=1e6 if hybrid else 0.0,
            hybrid=hybrid,
        ),
        "voice_vs_elastic": run_e12b_voice_vs_elastic(duration_s=max(duration_s - 3, 8.0)),
    }
