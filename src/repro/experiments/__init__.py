"""Experiment harness: one module per reproduced claim (see DESIGN.md §3)."""

from repro.experiments.common import ExperimentRun, make_qdisc_factory, three_class_queues
from repro.experiments.e1_scalability import mpls_census, overlay_census, run_e1
from repro.experiments.e2_qos import run_e2
from repro.experiments.e3_forwarding import run_e3
from repro.experiments.e4_ipsec import run_e4
from repro.experiments.e5_sla import run_e5
from repro.experiments.e6_te import run_e6
from repro.experiments.e7_isolation import run_e7
from repro.experiments.e8_mixed import run_e8
from repro.experiments.e10_interas import run_e10
from repro.experiments.e11_resilience import run_e11
from repro.experiments.e12_elastic import run_e12, run_e12a_aqm, run_e12b_voice_vs_elastic
from repro.experiments.e13_tiers import run_e13
from repro.experiments.e15_churn import run_e15
from repro.experiments.hybrid import run_hybrid_demo, run_scale
from repro.experiments.e14_intserv import run_e14
from repro.experiments.e9_ablations import (
    run_e9,
    run_e9a_schedulers,
    run_e9b_aqm,
    run_e9c_exp_php,
    run_e9d_stack_overhead,
    run_e9e_ibgp,
)

__all__ = [
    "ExperimentRun", "make_qdisc_factory", "three_class_queues",
    "mpls_census", "overlay_census",
    "run_e1", "run_e2", "run_e3", "run_e4", "run_e5", "run_e6", "run_e7",
    "run_e8", "run_e9", "run_e10", "run_e11", "run_e12", "run_e13", "run_e14",
    "run_e15",
    "run_e12a_aqm", "run_e12b_voice_vs_elastic",
    "run_hybrid_demo", "run_scale",
    "run_e9a_schedulers", "run_e9b_aqm",
    "run_e9c_exp_php", "run_e9d_stack_overhead", "run_e9e_ibgp",
]
