"""Network configuration validation.

``validate(net)`` sweeps a built network for the misconfigurations that
bite when composing topologies by hand: unattached interfaces, duplicate
infrastructure addresses, LFIB/FTN entries referencing missing interfaces,
VRF circuit bindings to unknown interfaces, customer routers leaking into
the provider IGP domain, and PEs without loopbacks (which MP-BGP needs as
next hops).  Returns a list of :class:`Issue`; experiments assert it is
empty after provisioning, and users get actionable messages instead of
silent drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mpls.lfib import LabelOp
from repro.mpls.lsr import Lsr
from repro.routing.router import Router
from repro.vpn.pe import PeRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = ["Issue", "validate"]


@dataclass(frozen=True, slots=True)
class Issue:
    """One validation finding."""

    severity: str   # "error" | "warning"
    node: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.node}: {self.message}"


def validate(net: "Network") -> list[Issue]:
    """Run every check; see module docstring.  Errors first, then warnings."""
    issues: list[Issue] = []
    issues += _check_interfaces(net)
    issues += _check_addresses(net)
    issues += _check_mpls_state(net)
    issues += _check_pe_state(net)
    issues.sort(key=lambda i: (i.severity != "error", i.node))
    return issues


def _check_interfaces(net: "Network") -> list[Issue]:
    out = []
    for node in net.nodes.values():
        for ifname, iface in node.interfaces.items():
            if iface.link is None:
                out.append(Issue("error", node.name,
                                 f"interface {ifname} has no attached link"))
            if iface.rate_bps <= 0:
                out.append(Issue("error", node.name,
                                 f"interface {ifname} has non-positive rate"))
    return out


def _check_addresses(net: "Network") -> list[Issue]:
    """Infrastructure (core-domain) addresses must be unique; customer
    addresses may overlap freely across VPNs."""
    out = []
    seen: dict = {}
    for node in net.nodes.values():
        if not isinstance(node, Router) or node.domain != "core":
            continue
        for addr in node.addresses:
            if addr in seen and seen[addr] != node.name:
                out.append(Issue("error", node.name,
                                 f"core address {addr} also on {seen[addr]}"))
            seen[addr] = node.name
    return out


def _check_mpls_state(net: "Network") -> list[Issue]:
    out = []
    for node in net.nodes.values():
        if not isinstance(node, Lsr):
            continue
        for in_label, entry in node.lfib.entries().items():
            if entry.out_ifname is not None and entry.out_ifname not in node.interfaces:
                out.append(Issue("error", node.name,
                                 f"LFIB label {in_label} points to missing "
                                 f"interface {entry.out_ifname!r}"))
            if entry.op is LabelOp.VPN:
                if not isinstance(node, PeRouter) or entry.vrf not in node.vrfs:
                    out.append(Issue("error", node.name,
                                     f"LFIB label {in_label} targets unknown "
                                     f"VRF {entry.vrf!r}"))
        for prefix, nhlfe in node.ftn.entries().items():
            if nhlfe.out_ifname not in node.interfaces:
                out.append(Issue("error", node.name,
                                 f"FTN {prefix} points to missing interface "
                                 f"{nhlfe.out_ifname!r}"))
    return out


def _check_pe_state(net: "Network") -> list[Issue]:
    out = []
    for node in net.nodes.values():
        if not isinstance(node, PeRouter):
            continue
        if node.vrfs and node.loopback is None:
            out.append(Issue("error", node.name,
                             "PE has VRFs but no loopback (MP-BGP next hop)"))
        for vrf in node.vrfs.values():
            for ifname in vrf.circuits:
                if ifname not in node.interfaces:
                    out.append(Issue("error", node.name,
                                     f"VRF {vrf.name} bound to missing "
                                     f"interface {ifname!r}"))
            if not vrf.circuits and len(vrf) == 0:
                out.append(Issue("warning", node.name,
                                 f"VRF {vrf.name} has no circuits and no routes"))
    return out
