"""MPLS traffic engineering: CSPF and explicit-route LSP signaling.

This is claim C7's machinery.  Plain IP routing (repro.routing.spf) follows
static metrics and cannot see load; constraint-based routing here prunes
links whose *residual reservable bandwidth* is below the tunnel's demand
and then runs shortest-path on what is left — the Constraint-Based Routing
the paper's §5 cites.  Explicit LSPs are signaled RSVP-TE-style: admission
control and label allocation proceed from the egress back toward the
ingress, installing SWAP/POP state exactly along the requested path
regardless of what the IGP would have chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.mpls.label import IMPLICIT_NULL
from repro.mpls.lfib import LabelOp, LfibEntry, Nhlfe
from repro.mpls.lsr import Lsr
from repro.net.address import Prefix
from repro.routing.spf import _deterministic_dijkstra, _domain_graph, _egress_towards

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Network

__all__ = ["AdmissionError", "TeLsp", "TrafficEngineering"]


class AdmissionError(RuntimeError):
    """A link on the requested path lacks reservable bandwidth."""


@dataclass
class TeLsp:
    """One signaled explicit-route LSP.

    ``hop_labels[i]`` is the label carried on the link ``path[i] →
    path[i+1]`` (IMPLICIT_NULL on the last hop under PHP).
    """

    name: str
    path: list[str]
    bandwidth_bps: float
    hop_labels: list[int] = field(default_factory=list)
    php: bool = True
    up: bool = False
    # RFC 3270 L-LSP: scheduling class the LSP's labels imply (None = E-LSP,
    # where the EXP bits carry the class instead).
    scheduling_class: int | None = None

    @property
    def ingress(self) -> str:
        return self.path[0]

    @property
    def egress(self) -> str:
        return self.path[-1]


class TrafficEngineering:
    """CSPF path computation + LSP signaling + per-link reservations.

    Parameters
    ----------
    net:
        The network (IGP must be converged before signaling).
    domain:
        Routing domain of the participating LSRs.
    subscription:
        Fraction of each link's rate that is reservable (1.0 = the full
        line rate; >1 models oversubscription).
    """

    def __init__(self, net: "Network", domain: str = "core", subscription: float = 1.0) -> None:
        self.net = net
        self.domain = domain
        self.subscription = subscription
        # Directed reservations: (from_name, to_name) -> reserved bps.
        self.reserved: dict[tuple[str, str], float] = {}
        self.lsps: dict[str, TeLsp] = {}

    # ------------------------------------------------------------------
    # Bandwidth accounting
    # ------------------------------------------------------------------
    def _capacity(self, u: str, v: str) -> float:
        dl = self.net.link_between(u, v)
        if dl is None:
            raise KeyError(f"no link {u}-{v}")
        return dl.rate_bps * self.subscription

    def residual(self, u: str, v: str) -> float:
        """Reservable bandwidth remaining on the directed link u→v."""
        return self._capacity(u, v) - self.reserved.get((u, v), 0.0)

    # ------------------------------------------------------------------
    # Constraint-based routing
    # ------------------------------------------------------------------
    def cspf(
        self,
        src: str,
        dst: str,
        bandwidth_bps: float,
        avoid_nodes: Sequence[str] = (),
        avoid_links: Sequence[tuple[str, str]] = (),
    ) -> Optional[list[str]]:
        """Shortest metric path satisfying the bandwidth constraint.

        Returns ``None`` when no feasible path exists.  The search runs on
        a *directed* residual graph — a link may be saturated toward the
        destination yet empty the other way — with the IGP's deterministic
        tie-breaking.
        """
        import networkx as nx

        base = _domain_graph(self.net, self.domain)
        avoid_n = set(avoid_nodes)
        avoid_l = {frozenset(l) for l in avoid_links}
        dg = nx.DiGraph()
        dg.add_nodes_from(n for n in base.nodes if n not in avoid_n)
        for u, v, data in base.edges(data=True):
            if u in avoid_n or v in avoid_n or frozenset((u, v)) in avoid_l:
                continue
            if self.residual(u, v) >= bandwidth_bps:
                dg.add_edge(u, v, metric=data["metric"], duplex=data["duplex"])
            if self.residual(v, u) >= bandwidth_bps:
                dg.add_edge(v, u, metric=data["metric"], duplex=data["duplex"])
        if src not in dg or dst not in dg:
            return None
        _dist, paths = _deterministic_dijkstra(dg, src)
        path = paths.get(dst)
        if path is None or len(path) < 2:
            return None
        return path

    # ------------------------------------------------------------------
    # Signaling
    # ------------------------------------------------------------------
    def signal(
        self,
        name: str,
        path: Sequence[str],
        bandwidth_bps: float,
        php: bool = True,
        scheduling_class: int | None = None,
    ) -> TeLsp:
        """Set up an LSP along an explicit ``path`` with admission control.

        Raises :class:`AdmissionError` (without partial state) when any hop
        lacks bandwidth; counts one PATH + one RESV message per hop.

        ``scheduling_class`` makes this an **L-LSP** (RFC 3270): every node
        the LSP's labels arrive at records label → class, so an
        ``llsp_classifier``-equipped scheduler puts the traffic in that
        class regardless of EXP.  One LSP per class, instead of one LSP
        carrying all classes distinguished by EXP (the E-LSP default).
        """
        if name in self.lsps:
            raise ValueError(f"LSP name {name!r} already in use")
        path = list(path)
        if len(path) < 2:
            raise ValueError("path needs at least two nodes")
        hops = list(zip(path, path[1:]))
        # Admission control across all hops *before* touching any state.
        for u, v in hops:
            if self.residual(u, v) < bandwidth_bps:
                raise AdmissionError(
                    f"{name}: link {u}->{v} has "
                    f"{self.residual(u, v):.0f}bps < {bandwidth_bps:.0f}bps"
                )
        for u, v in hops:
            self.reserved[(u, v)] = self.reserved.get((u, v), 0.0) + bandwidth_bps
        self.net.counters.incr("rsvp.path_msgs", len(hops))
        self.net.counters.incr("rsvp.resv_msgs", len(hops))

        lsrs = {n: self.net.nodes[n] for n in path}
        for n, node in lsrs.items():
            if not isinstance(node, Lsr):
                raise TypeError(f"{n} is not an LSR")

        g = _domain_graph(self.net, self.domain)
        # Allocate labels from egress backward (RESV direction).
        hop_labels: list[int] = [0] * len(hops)
        downstream_label = IMPLICIT_NULL
        if not php:
            egress: Lsr = lsrs[path[-1]]  # type: ignore[assignment]
            downstream_label = egress.labels.allocate()
            egress.lfib.install(
                downstream_label, LfibEntry(LabelOp.POP_PROCESS, lsp_id=name)
            )
        for i in range(len(hops) - 1, -1, -1):
            u, v = hops[i]
            hop_labels[i] = downstream_label
            if i == 0:
                break
            lsr: Lsr = lsrs[u]  # type: ignore[assignment]
            in_label = lsr.labels.allocate()
            dl = g[u][v]["duplex"]
            out_ifname, _ = _egress_towards(dl, u)
            if downstream_label == IMPLICIT_NULL:
                entry = LfibEntry(LabelOp.POP, out_ifname=out_ifname, lsp_id=name)
            else:
                entry = LfibEntry(
                    LabelOp.SWAP,
                    out_label=downstream_label,
                    out_ifname=out_ifname,
                    lsp_id=name,
                )
            lsr.lfib.install(in_label, entry)
            downstream_label = in_label

        lsp = TeLsp(name, path, bandwidth_bps, hop_labels, php=php, up=True,
                    scheduling_class=scheduling_class)
        if scheduling_class is not None:
            # Scheduling happens at the *transmitting* interface, so each
            # node learns the class of the label it puts on its downstream
            # hop (hop_labels[i] on link path[i] -> path[i+1]).  The
            # receiver records it too — harmless, and it keeps the map
            # symmetric for diagnostics.
            for i, label in enumerate(hop_labels):
                if label == IMPLICIT_NULL:
                    continue
                for node_name in (path[i], path[i + 1]):
                    node = lsrs[node_name]
                    assert isinstance(node, Lsr)
                    node.label_class[label] = scheduling_class
        self.lsps[name] = lsp
        self.net.trace.publish(
            "te.lsp_up",
            self.net.sim.now,
            name=name,
            path=tuple(path),
            bandwidth_bps=bandwidth_bps,
            php=php,
            scheduling_class=scheduling_class,
        )
        return lsp

    def setup(
        self,
        name: str,
        src: str,
        dst: str,
        bandwidth_bps: float,
        php: bool = True,
        scheduling_class: int | None = None,
    ) -> TeLsp:
        """CSPF + signal in one step (the common case)."""
        path = self.cspf(src, dst, bandwidth_bps)
        if path is None:
            raise AdmissionError(f"{name}: no feasible path {src}->{dst}")
        return self.signal(name, path, bandwidth_bps, php=php,
                           scheduling_class=scheduling_class)

    def teardown(self, name: str) -> None:
        """Release the LSP's reservations and forwarding state."""
        lsp = self.lsps.pop(name)
        for u, v in zip(lsp.path, lsp.path[1:]):
            self.reserved[(u, v)] -= lsp.bandwidth_bps
        for n in lsp.path:
            node = self.net.nodes[n]
            if isinstance(node, Lsr):
                for in_label, entry in list(node.lfib.entries().items()):
                    if entry.lsp_id == lsp.name:
                        node.lfib.remove(in_label)
                        node.label_class.pop(in_label, None)
                        if in_label in node.labels:
                            node.labels.release(in_label)
                for prefix, nhlfe in list(node.ftn.entries().items()):
                    if nhlfe.lsp_id == lsp.name:
                        node.ftn.unbind(prefix)
        lsp.up = False
        self.net.trace.publish("te.lsp_down", self.net.sim.now, name=name)

    # ------------------------------------------------------------------
    # Routing traffic onto tunnels
    # ------------------------------------------------------------------
    def ingress_nhlfe(self, lsp: TeLsp) -> Nhlfe:
        """The NHLFE an ingress uses to put a packet on ``lsp``."""
        g = _domain_graph(self.net, self.domain)
        u, v = lsp.path[0], lsp.path[1]
        dl = g[u][v]["duplex"]
        out_ifname, _ = _egress_towards(dl, u)
        return Nhlfe(out_ifname, (lsp.hop_labels[0],), lsp_id=lsp.name)

    def autoroute(self, lsp: TeLsp, prefixes: Sequence[Prefix | str]) -> None:
        """Bind destination ``prefixes`` at the ingress onto the tunnel.

        The ingress FIB must already know the prefixes (the FTN is keyed by
        the FIB's matched prefix), which converge() guarantees for
        infrastructure destinations.
        """
        ingress = self.net.nodes[lsp.ingress]
        assert isinstance(ingress, Lsr)
        nhlfe = self.ingress_nhlfe(lsp)
        for p in prefixes:
            ingress.ftn.bind(p, nhlfe)
