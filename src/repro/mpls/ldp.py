"""LDP-style hop-by-hop label distribution.

Distributes label bindings for a set of FECs (by default, every LSR's
loopback host route — the tunnel endpoints BGP/MPLS VPNs need) along the
IGP shortest-path tree, exactly as downstream-unsolicited LDP with ordered
control would: the egress originates a binding, each upstream LSR allocates
its own incoming label and records the downstream label to swap to.

Wire behaviour is abstracted to *message counting*: with liberal label
retention every LSR advertises each binding over every LDP session, so the
message count per FEC equals twice the number of LSR adjacencies.  These
counters are the MPLS side of experiment E1 — compare their growth in the
number of VPN sites against the O(N²) virtual-circuit mesh.

Penultimate-hop popping (PHP) is on by default; pass
``use_explicit_null=True`` to keep the label (and its EXP bits) until the
egress — RFC 3270 recommends this when QoS is carried in EXP, and ablation
E9c measures the difference.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from math import inf
from time import perf_counter
from typing import TYPE_CHECKING

from repro.mpls.label import EXPLICIT_NULL, IMPLICIT_NULL
from repro.mpls.lfib import LabelOp, LfibEntry, Nhlfe
from repro.mpls.lsr import Lsr
from repro.net.address import Prefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.routing.spf_core import DomainView
    from repro.topology import Network

__all__ = ["LdpResult", "run_ldp", "reset_ldp"]


def reset_ldp(net: "Network", domain: str = "core") -> int:
    """Withdraw all LDP-installed state (LFIB entries, FTN bindings, labels).

    Used together with :func:`repro.routing.spf.reconverge`: after the IGP
    moves, LDP bindings must follow the new next hops, so the resilience
    experiment resets and re-runs distribution.  Returns the number of
    LFIB entries removed.
    """
    removed = 0
    for node in net.nodes.values():
        if not isinstance(node, Lsr) or node.domain != domain:
            continue
        for in_label, entry in list(node.lfib.entries().items()):
            if entry.lsp_id and entry.lsp_id.startswith("ldp:"):
                node.lfib.remove(in_label)
                if in_label in node.labels:
                    node.labels.release(in_label)
                removed += 1
        for prefix, nhlfe in list(node.ftn.entries().items()):
            if nhlfe.lsp_id and nhlfe.lsp_id.startswith("ldp:"):
                node.ftn.unbind(prefix)
    tracer = getattr(net, "convergence_tracer", None)
    if tracer is not None:
        tracer.on_ldp_reset(removed)
    return removed


@dataclass
class LdpResult:
    """Outcome of one LDP distribution pass.

    ``bindings[fec][node_name]`` is the incoming label that node advertised
    for the FEC (IMPLICIT_NULL / EXPLICIT_NULL at the egress under PHP /
    explicit-null).  ``sessions`` is the number of LDP adjacencies and
    ``mapping_messages`` the total label-mapping advertisements sent.
    """

    bindings: dict[Prefix, dict[str, int]] = field(default_factory=dict)
    sessions: int = 0
    mapping_messages: int = 0
    lfib_entries: int = 0
    ftn_entries: int = 0


def run_ldp(
    net: "Network",
    fecs: list[Prefix] | None = None,
    domain: str = "core",
    php: bool = True,
    use_explicit_null: bool = False,
) -> LdpResult:
    """Distribute labels for ``fecs`` among all in-domain LSRs.

    Requires a converged IGP (:func:`repro.routing.spf.converge`) since
    LDP follows IGP next hops.  Returns the binding table and the
    control-plane cost counters.
    """
    if php and use_explicit_null:
        raise ValueError("php and explicit-null are mutually exclusive")

    t0 = perf_counter()
    view = net.domain_view(domain)
    lsrs: dict[str, Lsr] = {
        name: net.nodes[name]  # type: ignore[misc]
        for name in view.order_names
        if isinstance(net.nodes[name], Lsr)
    }
    result = LdpResult()
    # LDP sessions: one per adjacency where both ends are LSRs.
    session_pairs = [
        (view.names[i], view.names[j])
        for i, j in view.edges
        if view.names[i] in lsrs and view.names[j] in lsrs
    ]
    result.sessions = len(session_pairs)
    net.counters.incr("ldp.sessions", len(session_pairs))

    if fecs is None:
        # Default FEC set: every LSR's loopback plus the prefixes it
        # explicitly injects into the IGP (host routes it fronts).  Link
        # /30s are deliberately excluded — the standard "host routes only"
        # LDP filter — since labeling infrastructure subnets buys nothing.
        fecs = []
        for lsr in lsrs.values():
            if lsr.loopback is not None:
                fecs.append(Prefix.of(lsr.loopback, 32))
            fecs.extend(sorted(lsr.advertised_prefixes))

    # Map each FEC to its egress LSR (the one advertising the prefix).
    owner_of: dict[Prefix, str] = {}
    for name, lsr in lsrs.items():
        if lsr.loopback is not None:
            owner_of[Prefix.of(lsr.loopback, 32)] = name
        for p in lsr.connected_prefixes:
            owner_of.setdefault(p, name)
        for p in lsr.advertised_prefixes:
            owner_of.setdefault(p, name)

    # Batched install: every LFIB/FTN write for the whole pass lands per
    # node in one generation bump (nothing consults the tables mid-run).
    pending_lfib: dict[str, list[tuple[int, LfibEntry]]] = defaultdict(list)
    pending_ftn: dict[str, list[tuple[Prefix, Nhlfe]]] = defaultdict(list)
    for fec in fecs:
        egress_name = owner_of.get(fec)
        if egress_name is None:
            continue  # FEC not originated by an LSR in this domain
        bindings = _distribute_one(
            view, lsrs, fec, egress_name, php, use_explicit_null, result,
            pending_lfib, pending_ftn,
        )
        result.bindings[fec] = bindings
        # Liberal retention: every LSR advertises its binding to every
        # neighbour LSR; the egress advertises too.
        msgs = sum(
            1
            for u, v in session_pairs
            for end in (u, v)
            if end in bindings or end == egress_name
        )
        result.mapping_messages += msgs
        net.counters.incr("ldp.mapping_msgs", msgs)
    for name, items in pending_lfib.items():
        lsrs[name].lfib.install_many(items)
    for name, items in pending_ftn.items():
        lsrs[name].ftn.bind_many(items)
    net.trace.publish(
        "ldp.converged",
        net.sim.now,
        sessions=result.sessions,
        mapping_messages=result.mapping_messages,
        lfib_entries=result.lfib_entries,
        ftn_entries=result.ftn_entries,
        fecs=len(result.bindings),
    )
    tracer = getattr(net, "convergence_tracer", None)
    if tracer is not None:
        tracer.on_ldp_converged(
            sessions=result.sessions,
            lfib_entries=result.lfib_entries,
            ftn_entries=result.ftn_entries,
            fecs=len(result.bindings),
            wall_s=perf_counter() - t0,
        )
    return result


def _distribute_one(
    view: "DomainView",
    lsrs: dict[str, Lsr],
    fec: Prefix,
    egress_name: str,
    php: bool,
    use_explicit_null: bool,
    result: LdpResult,
    pending_lfib: dict[str, list[tuple[int, LfibEntry]]],
    pending_ftn: dict[str, list[tuple[Prefix, Nhlfe]]],
) -> dict[str, int]:
    """Queue LFIB/FTN state for one FEC; returns node → incoming label.

    Runs on the cached domain view: one memoized SPF per *node* for the
    whole pass (the pre-PR implementation ran a fresh Dijkstra per
    (FEC, node) pair).  Label allocation order — and therefore every label
    value — matches the reference exactly.
    """
    lsp_id = f"ldp:{fec}"
    egress = lsrs[egress_name]
    bindings: dict[str, int] = {}

    if php:
        bindings[egress_name] = IMPLICIT_NULL
    elif use_explicit_null:
        bindings[egress_name] = EXPLICIT_NULL
        pending_lfib[egress_name].append(
            (EXPLICIT_NULL, LfibEntry(LabelOp.POP_PROCESS, lsp_id=lsp_id))
        )
        result.lfib_entries += 1
    else:
        label = egress.labels.allocate()
        bindings[egress_name] = label
        pending_lfib[egress_name].append(
            (label, LfibEntry(LabelOp.POP_PROCESS, lsp_id=lsp_id))
        )
        result.lfib_entries += 1

    # Ordered control: a node may only advertise a binding once its own next
    # hop toward the egress has one.  Processing nodes by increasing
    # distance-from-egress guarantees the downstream side is decided first,
    # and it naturally stops label distribution at non-MPLS routers in a
    # mixed backbone (Fig. 4): an LSR whose IGP next hop is a plain router
    # gets no binding and its upstream falls back to IP forwarding.
    idx = view.idx
    names = view.names
    ei = idx[egress_name]
    dist_e = view.spf(ei)[0]
    order = sorted(
        (name for name in lsrs if name != egress_name and dist_e[idx[name]] != inf),
        key=lambda n: (dist_e[idx[n]], n),
    )
    for name in order:
        lsr = lsrs[name]
        ni = idx[name]
        dist_n, pred_n, _disc = view.spf(ni)
        if dist_n[ei] == inf:
            continue  # partitioned
        # First hop toward the egress: walk the predecessor chain back from
        # the egress until the node whose predecessor is this source.
        j = ei
        while pred_n[j] != ni:
            j = pred_n[j]
        nh_name = names[j]
        if nh_name not in bindings:
            continue  # next hop is not label-capable for this FEC
        bindings[name] = lsr.labels.allocate()

        out_ifname = view.nbr[ni][j][1]
        downstream = bindings[nh_name]
        if downstream == IMPLICIT_NULL:
            entry = LfibEntry(LabelOp.POP, out_ifname=out_ifname, lsp_id=lsp_id)
        else:
            entry = LfibEntry(
                LabelOp.SWAP,
                out_label=downstream,
                out_ifname=out_ifname,
                lsp_id=lsp_id,
            )
        pending_lfib[name].append((bindings[name], entry))
        result.lfib_entries += 1

        # Every LSR can also act as ingress for this FEC: bind the FTN so
        # unlabeled packets entering here get the tunnel label.
        pending_ftn[name].append((fec, Nhlfe(out_ifname, (downstream,), lsp_id=lsp_id)))
        result.ftn_entries += 1
    return bindings
