"""MPLS: labels, LFIB, LSR data plane, LDP distribution, traffic engineering."""

from repro.mpls.label import (
    EXPLICIT_NULL,
    FIRST_UNRESERVED,
    IMPLICIT_NULL,
    MAX_LABEL,
    LabelExhausted,
    LabelSpace,
)
from repro.mpls.frr import Bypass, FastReroute, FrrError
from repro.mpls.ldp import LdpResult, reset_ldp, run_ldp
from repro.mpls.lfib import FtnTable, LabelOp, Lfib, LfibEntry, Nhlfe
from repro.mpls.lsr import Lsr
from repro.mpls.te import AdmissionError, TeLsp, TrafficEngineering

__all__ = [
    "EXPLICIT_NULL", "FIRST_UNRESERVED", "IMPLICIT_NULL", "MAX_LABEL",
    "LabelExhausted", "LabelSpace",
    "LdpResult", "run_ldp", "reset_ldp",
    "Bypass", "FastReroute", "FrrError",
    "FtnTable", "LabelOp", "Lfib", "LfibEntry", "Nhlfe",
    "Lsr",
    "AdmissionError", "TeLsp", "TrafficEngineering",
]
