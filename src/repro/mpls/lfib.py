"""Label Forwarding Information Base (LFIB) and FEC-to-NHLFE map (FTN).

The LFIB is the exact-match table claim C4 celebrates: one dict lookup per
packet, independent of routing-table size.  Entries encode the standard
label operations:

* ``SWAP``   — transit LSR: replace the top label, forward.
* ``POP``    — penultimate-hop popping: remove the top label, forward; the
  next hop sees the inner label or plain IP.
* ``POP_PROCESS`` — LSP egress: remove the label and process what remains
  locally (inner label lookup or IP forwarding).
* ``VPN``    — egress PE: the label identifies a VRF; pop and hand the
  customer packet to that VRF's forwarding logic.

The FTN (FEC-to-NHLFE) table drives label *imposition* at the ingress LER:
an IP destination prefix maps to the label stack to push and the egress
interface to use.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.net.address import Prefix

__all__ = ["LabelOp", "LfibEntry", "Lfib", "Nhlfe", "FtnTable"]


class LabelOp(Enum):
    SWAP = "swap"
    POP = "pop"                  # penultimate-hop pop, then forward
    POP_PROCESS = "pop_process"  # egress: pop, then process locally
    VPN = "vpn"                  # egress PE: pop, deliver into a VRF
    SWAP_PUSH = "swap_push"      # FRR local repair: swap, then push bypass label


@dataclass(frozen=True, slots=True)
class LfibEntry:
    """One incoming-label binding."""

    op: LabelOp
    out_label: int | None = None   # for SWAP / SWAP_PUSH (the swap target)
    out_ifname: str | None = None  # for SWAP / POP / SWAP_PUSH
    vrf: str | None = None         # for VPN
    push_label: int | None = None  # for SWAP_PUSH (the bypass tunnel label)
    lsp_id: str | None = None      # provenance (which LSP installed this)

    def __post_init__(self) -> None:
        if self.op is LabelOp.SWAP and (self.out_label is None or self.out_ifname is None):
            raise ValueError("SWAP needs out_label and out_ifname")
        if self.op is LabelOp.POP and self.out_ifname is None:
            raise ValueError("POP needs out_ifname")
        if self.op is LabelOp.VPN and self.vrf is None:
            raise ValueError("VPN needs a vrf name")
        if self.op is LabelOp.SWAP_PUSH and (
            self.out_label is None or self.push_label is None or self.out_ifname is None
        ):
            raise ValueError("SWAP_PUSH needs out_label, push_label, and out_ifname")


class Lfib:
    """Exact-match incoming-label table.

    ``generation`` increments on every mutation so the data plane's label
    cache can detect churn (LDP reset, FRR bypass activation/restore)
    before serving a memoized entry.
    """

    def __init__(self) -> None:
        self._entries: dict[int, LfibEntry] = {}
        self.lookups = 0
        self.generation = 0

    def install(self, in_label: int, entry: LfibEntry) -> None:
        self._entries[in_label] = entry
        self.generation += 1

    def install_many(self, items: list[tuple[int, LfibEntry]]) -> int:
        """Batch install with a single generation bump (LDP convergence
        writes one entry per FEC; invalidating the label cache per entry
        buys nothing).  Returns the number of entries installed."""
        if not items:
            return 0
        self._entries.update(items)
        self.generation += 1
        return len(items)

    def remove(self, in_label: int) -> bool:
        removed = self._entries.pop(in_label, None) is not None
        if removed:
            self.generation += 1
        return removed

    def lookup(self, in_label: int) -> Optional[LfibEntry]:
        self.lookups += 1
        return self._entries.get(in_label)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, in_label: int) -> bool:
        return in_label in self._entries

    def entries(self) -> dict[int, LfibEntry]:
        return dict(self._entries)


@dataclass(frozen=True, slots=True)
class Nhlfe:
    """Next-Hop Label Forwarding Entry: what the ingress pushes and where.

    ``labels`` is given bottom-first: ``(vpn_label, tunnel_label)`` pushes
    the VPN label first so the tunnel label ends up on top.  A label equal
    to IMPLICIT_NULL (3) is skipped at push time — that is how a one-hop
    tunnel with PHP degenerates to an unlabeled (or VPN-label-only) packet.
    """

    out_ifname: str
    labels: tuple[int, ...]
    lsp_id: str | None = None


class FtnTable:
    """FEC-to-NHLFE map keyed by destination prefix.

    The ingress LER first does its normal LPM (the FIB decides the FEC),
    then consults this table with the *matched prefix*; a hit means "label
    this packet instead of IP-forwarding it".
    """

    def __init__(self) -> None:
        self._map: dict[Prefix, Nhlfe] = {}
        # Generation counter for the flow/tunnel caches: an imposition
        # decision derived from this table dies when a binding changes.
        self.generation = 0

    def bind(self, prefix: Prefix | str, nhlfe: Nhlfe) -> None:
        self._map[Prefix.parse(prefix) if isinstance(prefix, str) else prefix] = nhlfe
        self.generation += 1

    def bind_many(self, items: list[tuple[Prefix, Nhlfe]]) -> int:
        """Batch bind with a single generation bump; returns the count."""
        if not items:
            return 0
        self._map.update(items)
        self.generation += 1
        return len(items)

    def unbind(self, prefix: Prefix | str) -> bool:
        key = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        removed = self._map.pop(key, None) is not None
        if removed:
            self.generation += 1
        return removed

    def lookup(self, prefix: Prefix) -> Optional[Nhlfe]:
        return self._map.get(prefix)

    def __len__(self) -> int:
        return len(self._map)

    def entries(self) -> dict[Prefix, Nhlfe]:
        return dict(self._map)
