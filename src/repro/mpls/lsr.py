"""Label Switching Router data plane.

An :class:`Lsr` extends the conventional :class:`~repro.routing.router.Router`
with the MPLS fast path: labeled packets hit the LFIB (exact match, cost
``label_lookup_s``); unlabeled packets take the normal LPM path, and — if
the matched FEC has a bound NHLFE — get labels *imposed* and enter an LSP.
This dual behaviour is exactly the mixed deployment of the paper's Fig. 4:
the same box label-switches traffic that has a tunnel and IP-routes traffic
that does not.

The per-packet logic lives in the shared
:class:`~repro.dataplane.ForwardingPipeline`; this class merely enables
the pipeline's label-op and qos-mark stages and owns the MPLS tables.
"""

from __future__ import annotations

from typing import Callable

from repro.mpls.label import LabelSpace
from repro.mpls.lfib import FtnTable, Lfib, Nhlfe
from repro.net.packet import Packet
from repro.routing.router import Router

__all__ = ["Lsr"]


class Lsr(Router):
    """IP router + MPLS label switching."""

    def __init__(self, sim, name, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.lfib = Lfib()
        self.ftn = FtnTable()
        self.labels = LabelSpace()
        # RFC 3270 L-LSP support: labels whose *value* implies the
        # scheduling class (populated by TE signaling with a
        # scheduling_class; empty for E-LSPs, where EXP carries the class).
        self.label_class: dict[int, int] = {}
        # Hook the PE subclass installs to receive VPN-labeled packets.
        self.vpn_deliver: Callable[[Packet, str], None] | None = None
        # EXP policy at label imposition: None copies the packet's DSCP into
        # EXP (the RFC 3270 edge behaviour, claim C6); an int forces a fixed
        # value (0 models a QoS-blind edge for the ablations).
        self.impose_exp: int | None = None
        # Turn on the pipeline's label-op stage: same engine as the plain
        # Router, now with LFIB processing and FTN label imposition.
        self.pipeline.enable_mpls(self.lfib, self.ftn)

    # ------------------------------------------------------------------
    def impose(self, pkt: Packet, nhlfe: Nhlfe) -> None:
        """Push the NHLFE's label stack and transmit (pipeline qos-mark stage)."""
        self.pipeline.impose(pkt, nhlfe)
