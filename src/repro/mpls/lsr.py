"""Label Switching Router data plane.

An :class:`Lsr` extends the conventional :class:`~repro.routing.router.Router`
with the MPLS fast path: labeled packets hit the LFIB (exact match, cost
``label_lookup_s``); unlabeled packets take the normal LPM path, and — if
the matched FEC has a bound NHLFE — get labels *imposed* and enter an LSP.
This dual behaviour is exactly the mixed deployment of the paper's Fig. 4:
the same box label-switches traffic that has a tunnel and IP-routes traffic
that does not.
"""

from __future__ import annotations

from typing import Callable

from repro.mpls.label import IMPLICIT_NULL, LabelSpace
from repro.mpls.lfib import FtnTable, LabelOp, Lfib, Nhlfe
from repro.net.drops import DropReason
from repro.net.packet import Packet
from repro.routing.router import Router
from repro.sim.engine import bind

__all__ = ["Lsr"]


class Lsr(Router):
    """IP router + MPLS label switching."""

    def __init__(self, sim, name, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.lfib = Lfib()
        self.ftn = FtnTable()
        self.labels = LabelSpace()
        # RFC 3270 L-LSP support: labels whose *value* implies the
        # scheduling class (populated by TE signaling with a
        # scheduling_class; empty for E-LSPs, where EXP carries the class).
        self.label_class: dict[int, int] = {}
        # Hook the PE subclass installs to receive VPN-labeled packets.
        self.vpn_deliver: Callable[[Packet, str], None] | None = None
        # EXP policy at label imposition: None copies the packet's DSCP into
        # EXP (the RFC 3270 edge behaviour, claim C6); an int forces a fixed
        # value (0 models a QoS-blind edge for the ablations).
        self.impose_exp: int | None = None

    # ------------------------------------------------------------------
    def handle(self, pkt: Packet, ifname: str) -> None:
        if pkt.mpls_stack:
            self.after_processing(
                self.processing.label_lookup_s, bind(self._handle_mpls, pkt)
            )
            return
        if self.owns(pkt.ip.dst):
            self.deliver_local(pkt)
            return
        self.after_processing(
            self.processing.ip_lookup_s, bind(self._forward_ip_or_impose, pkt)
        )

    # ------------------------------------------------------------------
    # MPLS fast path
    # ------------------------------------------------------------------
    def _handle_mpls(self, pkt: Packet) -> None:
        top = pkt.top_label
        assert top is not None
        fl = self.trace.flight
        entry = self.lfib.lookup(top.label)
        if entry is None:
            self.drop(pkt, DropReason.NO_LABEL)
            return
        if entry.op is LabelOp.SWAP:
            if pkt.decrement_ttl() <= 0:
                self.drop(pkt, DropReason.TTL)
                return
            if fl is not None:
                fl.label_op(self.sim.now, self.name, pkt, "swap",
                            old=top.label, new=entry.out_label)
            pkt.swap_label(entry.out_label)  # EXP is preserved across swaps
            self.transmit(pkt, entry.out_ifname)
        elif entry.op is LabelOp.POP:
            if pkt.decrement_ttl() <= 0:
                self.drop(pkt, DropReason.TTL)
                return
            if fl is not None:
                fl.label_op(self.sim.now, self.name, pkt, "pop", old=top.label)
            pkt.pop_label()
            self.transmit(pkt, entry.out_ifname)
        elif entry.op is LabelOp.POP_PROCESS:
            if fl is not None:
                fl.label_op(self.sim.now, self.name, pkt, "pop", old=top.label)
            pkt.pop_label()
            if pkt.mpls_stack:
                self._handle_mpls(pkt)  # inner label is also ours
            elif self.owns(pkt.ip.dst):
                self.deliver_local(pkt)
            else:
                self._forward_ip_or_impose(pkt)
        elif entry.op is LabelOp.SWAP_PUSH:
            # FRR local repair: restore the label the merge point expects,
            # then tunnel it over the bypass LSP.  EXP is copied onto the
            # bypass entry so the detour keeps the class.
            if pkt.decrement_ttl() <= 0:
                self.drop(pkt, DropReason.TTL)
                return
            exp = pkt.top_label.exp if pkt.top_label else 0
            if fl is not None:
                fl.label_op(self.sim.now, self.name, pkt, "swap",
                            old=top.label, new=entry.out_label)
                fl.label_op(self.sim.now, self.name, pkt, "push",
                            new=entry.push_label)
            pkt.swap_label(entry.out_label)
            pkt.push_label(entry.push_label, exp=exp)
            self.transmit(pkt, entry.out_ifname)
        elif entry.op is LabelOp.VPN:
            if fl is not None:
                fl.label_op(self.sim.now, self.name, pkt, "pop", old=top.label)
            pkt.pop_label()
            if self.vpn_deliver is None:
                self.drop(pkt, DropReason.VPN_LABEL_NO_VRF)
            else:
                self.vpn_deliver(pkt, entry.vrf)  # type: ignore[arg-type]
        else:  # pragma: no cover - enum is closed
            self.drop(pkt, DropReason.BAD_LFIB_OP)

    # ------------------------------------------------------------------
    # IP slow path with label imposition
    # ------------------------------------------------------------------
    def _forward_ip_or_impose(self, pkt: Packet) -> None:
        if pkt.decrement_ttl() <= 0:
            self.drop(pkt, DropReason.TTL)
            return
        match = self.fib.lookup_prefix(pkt.ip.dst)
        if match is None:
            self.drop(pkt, DropReason.NO_ROUTE)
            return
        prefix, route = match
        nhlfe = self.ftn.lookup(prefix)
        if nhlfe is not None:
            self.impose(pkt, nhlfe)
            return
        self.dispatch(pkt, route)

    def impose(self, pkt: Packet, nhlfe: Nhlfe) -> None:
        """Push the NHLFE's label stack and transmit.

        Implicit-null labels in the stack are not pushed (PHP on a one-hop
        tunnel).  EXP comes from the packet's DSCP unless ``impose_exp``
        pins a fixed value.
        """
        from repro.qos.dscp import dscp_to_exp

        exp = (
            self.impose_exp
            if self.impose_exp is not None
            else dscp_to_exp(pkt.ip.dscp)
        )
        fl = self.trace.flight
        for label in nhlfe.labels:
            if label == IMPLICIT_NULL:
                continue
            if fl is not None:
                fl.label_op(self.sim.now, self.name, pkt, "push", new=label)
            pkt.push_label(label, exp=exp)
        self.transmit(pkt, nhlfe.out_ifname)
