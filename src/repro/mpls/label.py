"""MPLS label spaces and well-known labels.

Each LSR owns a *platform-wide* label space: incoming labels are unique per
node (not per interface), matching the common router implementation.
Labels 0–15 are reserved by RFC 3032; allocation starts at 16.
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "IMPLICIT_NULL",
    "EXPLICIT_NULL",
    "FIRST_UNRESERVED",
    "MAX_LABEL",
    "LabelSpace",
    "LabelExhausted",
]

#: RFC 3032 reserved label: advertised by an egress to request penultimate-hop
#: popping — the upstream LSR pops instead of swapping, so the egress never
#: sees the label.
IMPLICIT_NULL = 3

#: RFC 3032 reserved label: egress wants the label (with its EXP bits!) kept
#: until the last hop — needed when QoS is carried in EXP (RFC 3270 notes
#: implicit-null discards the EXP information a hop early).
EXPLICIT_NULL = 0

FIRST_UNRESERVED = 16
MAX_LABEL = (1 << 20) - 1


class LabelExhausted(RuntimeError):
    """The 20-bit label space ran out (only plausible in stress tests)."""


class LabelSpace:
    """Per-platform allocator of incoming labels.

    Frees are supported so LSP teardown (TE preemption tests) can recycle
    labels; re-allocation is LIFO which maximises reuse and keeps traces
    compact.
    """

    def __init__(self, first: int = FIRST_UNRESERVED) -> None:
        if not FIRST_UNRESERVED <= first <= MAX_LABEL:
            raise ValueError(f"first label {first} out of range")
        self._next = first
        self._free: list[int] = []
        self._allocated: set[int] = set()

    def allocate(self) -> int:
        """Return a fresh (or recycled) label unique on this platform."""
        if self._free:
            label = self._free.pop()
        else:
            if self._next > MAX_LABEL:
                raise LabelExhausted("20-bit label space exhausted")
            label = self._next
            self._next += 1
        self._allocated.add(label)
        return label

    def release(self, label: int) -> None:
        """Return ``label`` to the pool.  Raises on double-free."""
        if label not in self._allocated:
            raise ValueError(f"label {label} not allocated")
        self._allocated.remove(label)
        self._free.append(label)

    @property
    def in_use(self) -> int:
        return len(self._allocated)

    def __contains__(self, label: int) -> bool:
        return label in self._allocated

    def allocated(self) -> Iterator[int]:
        return iter(sorted(self._allocated))
