"""MPLS fast reroute: facility (link-protection) bypass tunnels.

The resilience story behind the paper's "avoid ... disabled links" (§3):
waiting for the IGP to re-flood and re-run SPF leaves traffic blackholed
for the convergence time (seconds at year-2000 timer defaults).  RSVP-TE
fast reroute pre-signals a *bypass* LSP around each protected link; on
failure, the point of local repair (PLR) — the router immediately
upstream — rewrites its LFIB entry in place: swap to the label the merge
point expects, then push the bypass tunnel label.  Recovery is one local
table write (~tens of ms in practice, instantaneous here), invisible to
the ingress and the IGP.

Restrictions (documented, asserted): a hop can be protected only when the
merge point expects a *real* label — i.e. not the final hop of a PHP LSP
(the merge point would expect unlabeled traffic, which a bypass cannot
deliver mid-tunnel).  Signal protected LSPs with ``php=False`` to protect
every hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpls.label import IMPLICIT_NULL
from repro.mpls.lfib import LabelOp, LfibEntry
from repro.mpls.lsr import Lsr
from repro.mpls.te import TeLsp, TrafficEngineering

__all__ = ["Bypass", "FrrError", "FastReroute"]


class FrrError(RuntimeError):
    """Protection impossible (no disjoint path, PHP final hop...)."""


@dataclass
class Bypass:
    """One installed link protection for one LSP hop."""

    lsp_name: str
    hop_index: int              # protects path[hop_index] -> path[hop_index+1]
    plr: str                    # point of local repair (upstream node)
    merge_point: str
    bypass_lsp: TeLsp
    in_label: int               # protected LSP's incoming label at the PLR
    primary_entry: LfibEntry    # entry to restore after repair
    active: bool = False


class FastReroute:
    """Pre-signal bypass LSPs and flip PLR state on failure.

    One bypass LSP per (PLR, merge point) pair is shared by every
    protected LSP crossing that link — the "facility backup" model.
    """

    def __init__(self, te: TrafficEngineering) -> None:
        self.te = te
        self.net = te.net
        self.bypasses: list[Bypass] = []
        # Shared facility tunnels keyed by (plr, merge_point).
        self._facility: dict[tuple[str, str], TeLsp] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _facility_tunnel(self, plr: str, mp: str, bandwidth_bps: float) -> TeLsp:
        key = (plr, mp)
        lsp = self._facility.get(key)
        if lsp is not None:
            return lsp
        path = self.te.cspf(plr, mp, bandwidth_bps, avoid_links=[(plr, mp)])
        if path is None:
            raise FrrError(f"no bypass path {plr}->{mp} avoiding the protected link")
        lsp = self.te.signal(f"bypass:{plr}->{mp}", path, bandwidth_bps, php=True)
        self._facility[key] = lsp
        return lsp

    def protect_hop(self, lsp: TeLsp, hop_index: int, bandwidth_bps: float | None = None) -> Bypass:
        """Install link protection for one transit hop of ``lsp``.

        ``hop_index`` must address a transit hop (1 ≤ i ≤ len(path)−2):
        the ingress hop has no LFIB state to rewrite (an ingress reroutes
        by re-running CSPF instead).
        """
        if not 1 <= hop_index <= len(lsp.path) - 2:
            raise FrrError(
                f"hop index {hop_index} not a protectable transit hop of "
                f"{lsp.name} (path length {len(lsp.path)})"
            )
        plr = lsp.path[hop_index]
        mp = lsp.path[hop_index + 1]
        expected = lsp.hop_labels[hop_index]
        if expected == IMPLICIT_NULL:
            raise FrrError(
                f"{lsp.name} hop {plr}->{mp}: merge point expects unlabeled "
                "traffic (PHP final hop); signal the LSP with php=False"
            )
        in_label = lsp.hop_labels[hop_index - 1]
        plr_node = self.net.nodes[plr]
        assert isinstance(plr_node, Lsr)
        primary = plr_node.lfib.lookup(in_label)
        if primary is None:
            raise FrrError(f"{lsp.name}: no LFIB state at PLR {plr}")
        bw = bandwidth_bps if bandwidth_bps is not None else lsp.bandwidth_bps
        bypass_lsp = self._facility_tunnel(plr, mp, bw)
        bypass = Bypass(
            lsp_name=lsp.name,
            hop_index=hop_index,
            plr=plr,
            merge_point=mp,
            bypass_lsp=bypass_lsp,
            in_label=in_label,
            primary_entry=primary,
        )
        self.bypasses.append(bypass)
        return bypass

    def protect_lsp(self, lsp: TeLsp) -> list[Bypass]:
        """Protect every protectable transit hop of ``lsp``."""
        out = []
        last = len(lsp.path) - 2
        for i in range(1, last + 1):
            if lsp.hop_labels[i] == IMPLICIT_NULL:
                continue  # unprotectable PHP final hop
            try:
                out.append(self.protect_hop(lsp, i))
            except FrrError:
                continue  # no disjoint path around this link
        return out

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def trigger_link_failure(self, a: str, b: str) -> int:
        """Activate every bypass protecting the (directed either way) link.

        Returns the number of LSPs locally repaired.  Called by the
        experiment at the failure instant — modeling loss-of-light
        detection at the PLR.
        """
        repaired = 0
        for bp in self.bypasses:
            if bp.active or {bp.plr, bp.merge_point} != {a, b}:
                continue
            plr_node = self.net.nodes[bp.plr]
            assert isinstance(plr_node, Lsr)
            nhlfe = self.te.ingress_nhlfe(bp.bypass_lsp)
            # The merge point expects the label the PLR's primary entry
            # would have swapped to (guaranteed real by the protection
            # preconditions); restore it, then tunnel over the bypass.
            plr_node.lfib.install(
                bp.in_label,
                LfibEntry(
                    LabelOp.SWAP_PUSH,
                    out_label=bp.primary_entry.out_label,
                    push_label=nhlfe.labels[0],
                    out_ifname=nhlfe.out_ifname,
                    lsp_id=f"frr:{bp.lsp_name}",
                ),
            )
            bp.active = True
            repaired += 1
        if repaired:
            self.net.counters.incr("frr.repairs", repaired)
            self.net.trace.publish(
                "frr.repair", self.net.sim.now, link=(a, b), repaired=repaired
            )
            tracer = getattr(self.net, "convergence_tracer", None)
            if tracer is not None:
                tracer.on_frr_repair(a, b, repaired)
        return repaired

    def restore_link(self, a: str, b: str) -> int:
        """Revert local repairs after the link comes back."""
        restored = 0
        for bp in self.bypasses:
            if not bp.active or {bp.plr, bp.merge_point} != {a, b}:
                continue
            plr_node = self.net.nodes[bp.plr]
            assert isinstance(plr_node, Lsr)
            plr_node.lfib.install(bp.in_label, bp.primary_entry)
            bp.active = False
            restored += 1
        if restored:
            self.net.counters.incr("frr.restores", restored)
            self.net.trace.publish(
                "frr.restore", self.net.sim.now, link=(a, b), restored=restored
            )
        return restored

    @property
    def active_repairs(self) -> int:
        return sum(1 for bp in self.bypasses if bp.active)
