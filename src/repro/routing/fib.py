"""Forwarding Information Base with longest-prefix match.

The FIB is a binary (unibit) trie over the 32-bit destination address —
the classic software LPM structure.  Claim C4 of the paper contrasts this
per-packet variable-length lookup against MPLS's exact-match label lookup;
experiment E3 measures both on the real data structures, so the trie here
is implemented faithfully rather than delegated to a dict of prefixes.

A :class:`RouteEntry` resolves to an egress interface and an optional
next-hop address (None for directly connected destinations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.net.address import IPv4Address, Prefix

__all__ = ["RouteEntry", "Fib"]


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """One forwarding decision.

    Attributes
    ----------
    out_ifname:
        Egress interface name on the owning node (the primary path).
    next_hop:
        Next-hop router address, or ``None`` when the destination is on the
        attached subnet (or the entry is a host route to a neighbour).
    metric:
        Path cost that installed the route (for observability/tie tests).
    source:
        Provenance tag: "connected", "static", "spf", "bgp", ...
    alternates:
        Additional equal-cost (out_ifname, next_hop) pairs for ECMP; the
        router hashes the flow over ``1 + len(alternates)`` choices so one
        flow's packets never reorder across paths.
    """

    out_ifname: str
    next_hop: Optional[IPv4Address] = None
    metric: float = 0.0
    source: str = "static"
    alternates: tuple[tuple[str, Optional[IPv4Address]], ...] = ()

    @property
    def all_paths(self) -> tuple[tuple[str, Optional[IPv4Address]], ...]:
        """Primary + alternates, in deterministic order."""
        return ((self.out_ifname, self.next_hop), *self.alternates)


class _TrieNode:
    __slots__ = ("left", "right", "entry")

    def __init__(self) -> None:
        self.left: _TrieNode | None = None   # bit 0
        self.right: _TrieNode | None = None  # bit 1
        self.entry: RouteEntry | None = None


class Fib:
    """Binary-trie longest-prefix-match forwarding table.

    ``generation`` increments on every mutation (install/withdraw); the
    data plane's flow caches compare it before serving a memoized
    decision, so SPF reconvergence or route churn can never leave a stale
    forwarding entry in service (see ``repro.dataplane.caches``).
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._routes: dict[Prefix, RouteEntry] = {}
        # Leaf-node cache: the trie node a prefix terminates at.  Interior
        # nodes are never pruned (see :meth:`withdraw`), so a cached leaf
        # stays valid forever and re-installing a known prefix — what every
        # reconvergence does for most routes — skips the per-bit walk.
        self._leaf: dict[Prefix, _TrieNode] = {}
        self.lookups = 0
        self.generation = 0

    # ------------------------------------------------------------------
    def _leaf_node(self, pfx: Prefix) -> _TrieNode:
        """The (possibly new) trie node ``pfx`` terminates at, cached."""
        node = self._leaf.get(pfx)
        if node is not None:
            return node
        node = self._root
        net = pfx.network
        for depth in range(pfx.length):
            bit = (net >> (31 - depth)) & 1
            if bit:
                if node.right is None:
                    node.right = _TrieNode()
                node = node.right
            else:
                if node.left is None:
                    node.left = _TrieNode()
                node = node.left
        self._leaf[pfx] = node
        return node

    def install(self, prefix: Prefix | str, entry: RouteEntry) -> None:
        """Insert or replace the route for ``prefix``."""
        pfx = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        self._leaf_node(pfx).entry = entry
        self._routes[pfx] = entry
        self.generation += 1

    def install_many(self, items: list[tuple[Prefix, RouteEntry]]) -> int:
        """Install a batch of routes with a *single* generation bump.

        The control plane installs hundreds of routes per convergence;
        bumping the generation once per batch keeps the data plane's flow
        caches from being invalidated route-by-route (they flush wholesale
        on any generation change anyway) and skips the per-call prefix
        parsing.  Returns the number of routes installed.
        """
        if not items:
            return 0
        leaf_get = self._leaf.get
        leaf_node = self._leaf_node
        routes = self._routes
        for pfx, entry in items:
            node = leaf_get(pfx)
            if node is None:
                node = leaf_node(pfx)
            node.entry = entry
            routes[pfx] = entry
        self.generation += 1
        return len(items)

    def withdraw(self, prefix: Prefix | str) -> bool:
        """Remove the route for ``prefix``; returns False when absent.

        Trie nodes are not pruned (withdrawals are rare in our scenarios and
        stale interior nodes are harmless to correctness) — which is also
        what keeps the leaf-node cache sound.
        """
        pfx = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        if pfx not in self._routes:
            return False
        del self._routes[pfx]
        self.generation += 1
        self._leaf_node(pfx).entry = None
        return True

    def withdraw_many(self, prefixes: list[Prefix]) -> int:
        """Withdraw a batch of routes with a single generation bump.

        Returns the number of routes actually removed (absent prefixes are
        skipped, like :meth:`withdraw` returning False).
        """
        removed = 0
        for pfx in prefixes:
            if pfx not in self._routes:
                continue
            del self._routes[pfx]
            removed += 1
            self._leaf_node(pfx).entry = None
        if removed:
            self.generation += 1
        return removed

    # ------------------------------------------------------------------
    def lookup(self, addr: IPv4Address | int) -> Optional[RouteEntry]:
        """Longest-prefix match; ``None`` when no route covers ``addr``."""
        self.lookups += 1
        value = addr.value if isinstance(addr, IPv4Address) else addr
        node: _TrieNode | None = self._root
        best = self._root.entry
        depth = 0
        while node is not None and depth < 32:
            bit = (value >> (31 - depth)) & 1
            node = node.right if bit else node.left
            if node is not None and node.entry is not None:
                best = node.entry
            depth += 1
        return best

    def lookup_prefix(self, addr: IPv4Address | int) -> Optional[tuple[Prefix, RouteEntry]]:
        """Like :meth:`lookup` but also returns the matching prefix."""
        value = addr.value if isinstance(addr, IPv4Address) else addr
        best: tuple[Prefix, RouteEntry] | None = None
        node: _TrieNode | None = self._root
        if node.entry is not None:
            best = (Prefix(0, 0), node.entry)
        depth = 0
        prefix_bits = 0
        while node is not None and depth < 32:
            bit = (value >> (31 - depth)) & 1
            prefix_bits = (prefix_bits << 1) | bit
            node = node.right if bit else node.left
            depth += 1
            if node is not None and node.entry is not None:
                best = (Prefix(prefix_bits << (32 - depth), depth), node.entry)
        return best

    # ------------------------------------------------------------------
    def routes(self) -> Iterator[tuple[Prefix, RouteEntry]]:
        """All installed routes (arbitrary order)."""
        return iter(self._routes.items())

    def get(self, prefix: Prefix | str) -> Optional[RouteEntry]:
        pfx = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
        return self._routes.get(pfx)

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes
