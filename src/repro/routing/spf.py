"""Link-state shortest-path routing (converged-OSPF model).

Rather than simulating LSA flooding packet-by-packet, :func:`converge`
computes what a converged OSPF domain would have computed — per-router
shortest-path trees over the configured metrics — and installs the
resulting routes into every router's FIB.  This is the standard modeling
shortcut for steady-state studies and it keeps the data-plane experiments
unconfounded by IGP transients.

The paper's claim C2 hinges on a *property* of this protocol family: the
metric is static, so the IGP cannot route around load.  :func:`converge`
therefore takes no notice of traffic — by design.  Constraint-based routing
that does see residual bandwidth lives in :mod:`repro.mpls.te`.

Customer equipment (``node.domain != domain``) is excluded: its addresses
may overlap between customers and must never enter the provider IGP
(claim C5); reachability for them is the VPN layer's job.

Since the control-plane fast path, all graph work runs on the network's
cached :class:`~repro.routing.spf_core.DomainView` (integer-indexed,
generation-stamped) instead of a networkx graph rebuilt per call, routes
land in the FIB through batched installs, and :func:`reconverge` is
*incremental*: it diffs the edge set against the snapshot of the last
convergence and recomputes only the sources whose shortest-path trees the
change can touch.  FIB contents are bit-identical to the reference
implementation (``repro.routing.reference``); ``tests/test_spf_parity.py``
holds that equivalence.
"""

from __future__ import annotations

from math import inf
from time import perf_counter
from typing import TYPE_CHECKING

import networkx as nx

from repro.net.address import IPv4Address, Prefix
from repro.routing.fib import RouteEntry
from repro.routing.router import Router
from repro.routing.spf_core import (
    TIE_EPS,
    SpfState,
    costs_equal,
    dijkstra_pred,
    first_hop_array,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology -> routing)
    from repro.routing.spf_core import DomainView
    from repro.topology import DuplexLink, Network

__all__ = ["converge", "spf_paths", "advertised_prefixes"]


def advertised_prefixes(router: "Router") -> list[Prefix]:
    """Prefixes ``router`` contributes to the IGP.

    Loopback host route + connected link subnets + explicitly injected
    prefixes (access subnets for hosts it fronts).
    """
    out: list[Prefix] = []
    if router.loopback is not None:
        out.append(Prefix.of(router.loopback, 32))
    out.extend(router.connected_prefixes)
    out.extend(router.advertised_prefixes)
    return out


def _domain_graph(net: "Network", domain: str) -> nx.Graph:
    """networkx export of the cached domain view (CSPF/IntServ consumers)."""
    view = net.domain_view(domain)
    g = nx.Graph()
    g.add_nodes_from(view.order_names)
    names = view.names
    for (i, j), metric in view.edges.items():
        g.add_edge(names[i], names[j], metric=metric, duplex=view.duplex[(i, j)])
    return g


def _egress_towards(dl: "DuplexLink", src_name: str) -> tuple[str, IPv4Address]:
    """(out_ifname, next_hop_addr) for ``src`` using duplex link ``dl``."""
    if dl.a.name == src_name:
        if dl.egress_a is not None:  # precomputed at connect time
            return dl.egress_a
    elif dl.egress_b is not None:
        return dl.egress_b
    from repro.routing.spf_core import _egress_scan

    return _egress_scan(dl, src_name)


def _install_spf_for_source(
    view: "DomainView", si: int, prefixes_by_idx: list[list[Prefix]]
) -> list[tuple[Prefix, RouteEntry]]:
    """The (prefix, entry) batch one source's SPF run wants installed.

    Destinations are iterated in Dijkstra *discovery order* — the
    reference implementation's ``paths`` dict order — because prefixes
    advertised by several routers (link /30s) resolve last-writer-wins.
    """
    dist, pred, disc = view.spf(si)
    nbr = view.nbr[si]
    src = view.routers[si]
    cp = src.connected_prefixes
    batch: list[tuple[Prefix, RouteEntry]] = [
        (subnet, RouteEntry(ifname, None, 0.0, "connected"))
        for subnet, ifname in cp.items()
    ]
    fh = first_hop_array(pred, disc, si, len(view.names))
    for k in range(1, len(disc)):
        v = disc[k]
        info = nbr[fh[v]]
        entry = RouteEntry(info[1], info[2], dist[v], "spf")
        for prefix in prefixes_by_idx[v]:
            if prefix in cp:
                continue  # already covered by the connected route
            batch.append((prefix, entry))
    # Shared prefixes (link /30s advertised by both endpoints) appear twice;
    # install_many writes in order, so last-writer-wins falls out — and the
    # duplicate counts toward the return value exactly as the per-route
    # implementation counted it.
    return batch


def _ecmp_entry_towards(
    view: "DomainView", sj: int, dist
) -> RouteEntry | None:
    """Source ``sj``'s ECMP route entry toward the destination whose
    distance array is ``dist`` (None when unreachable / no candidate)."""
    ds = dist[sj]
    if ds == inf:
        return None
    candidates: list[tuple[str, IPv4Address]] = []
    nbr = view.nbr[sj]
    for v, w in view.adj[sj]:
        dv = dist[v]
        if dv != inf and costs_equal(w + dv, ds):
            info = nbr[v]
            candidates.append((info[1], info[2]))
    if not candidates:
        return None
    (primary_if, primary_nh), *alts = candidates
    return RouteEntry(primary_if, primary_nh, ds, "spf", alternates=tuple(alts))


def _save_state(net: "Network", domain: str, view: "DomainView", ecmp: bool,
                prefixes_by_idx: list[list[Prefix]]) -> None:
    net._spf_state[domain] = SpfState(
        ecmp=ecmp,
        names=view.names,
        edges=dict(view.edges),
        prefixes=[tuple(p) for p in prefixes_by_idx],
        spf=dict(view._spf),
    )


def converge(net: "Network", domain: str = "core", ecmp: bool = False) -> int:
    """Compute and install SPF routes for every in-domain router.

    Returns the number of FIB entries installed.  Deterministic: equal-cost
    ties break toward the lexicographically smallest next-hop router name.
    With ``ecmp=True`` every equal-cost first hop is installed instead (the
    lowest-named one as primary, the rest as alternates) and routers spread
    *flows* across them by 5-tuple hash.
    """
    if ecmp:
        return _converge_ecmp(net, domain)
    view = net.domain_view(domain)
    prefixes_by_idx = [advertised_prefixes(r) for r in view.routers]
    installed = 0
    for si in view.order_idx:
        batch = _install_spf_for_source(view, si, prefixes_by_idx)
        installed += view.routers[si].fib.install_many(batch)
    _save_state(net, domain, view, False, prefixes_by_idx)
    return installed


def _converge_ecmp(net: "Network", domain: str) -> int:
    """ECMP variant of :func:`converge`: per-destination relaxation.

    For destination D, router S's equal-cost first hops are the neighbours
    v with ``metric(S,v) + dist_D(v) == dist_D(S)`` — the standard OSPF
    multipath condition.  Assumes symmetric link metrics (true for every
    link :meth:`repro.topology.Network.connect` creates), which lets one
    destination-rooted SPF serve every source.
    """
    view = net.domain_view(domain)
    prefixes_by_idx = [advertised_prefixes(r) for r in view.routers]
    installed = 0
    for si in view.order_idx:
        src = view.routers[si]
        batch = [
            (subnet, RouteEntry(ifname, None, 0.0, "connected"))
            for subnet, ifname in src.connected_prefixes.items()
        ]
        installed += src.fib.install_many(batch)
    batches: dict[int, list[tuple[Prefix, RouteEntry]]] = {
        i: [] for i in view.order_idx
    }
    for di in view.order_idx:
        dist, _pred, _disc = view.spf(di)
        prefixes = prefixes_by_idx[di]
        for sj in view.order_idx:
            if sj == di:
                continue
            entry = _ecmp_entry_towards(view, sj, dist)
            if entry is None:
                continue
            cp = view.routers[sj].connected_prefixes
            b = batches[sj]
            for prefix in prefixes:
                if prefix in cp:
                    continue
                b.append((prefix, entry))
    for sj in view.order_idx:
        installed += view.routers[sj].fib.install_many(batches[sj])
    _save_state(net, domain, view, True, prefixes_by_idx)
    return installed


def _deterministic_dijkstra(
    g: nx.Graph, src: str
) -> tuple[dict[str, float], dict[str, list[str]]]:
    """Dijkstra with lexicographic tie-breaking on the path's node names.

    Works on any networkx graph with ``metric`` edge attributes (the TE
    module runs it on a *directed* residual graph).  Same results — values
    and dict insertion order — as the reference path-tuple implementation,
    via the indexed predecessor-map core.
    """
    names = sorted(g.nodes)
    idx = {name: i for i, name in enumerate(names)}
    adj: list[list[tuple[int, float]]] = [[] for _ in names]
    directed = g.is_directed()
    for u, v, data in g.edges(data=True):
        w = data["metric"]
        adj[idx[u]].append((idx[v], w))
        if not directed:
            adj[idx[v]].append((idx[u], w))
    for lst in adj:
        lst.sort()
    dist_arr, pred, disc = dijkstra_pred(adj, idx[src])
    dist: dict[str, float] = {}
    paths: dict[str, list[str]] = {}
    # ``disc`` is first-discovery order, which is NOT topological with
    # respect to the final pred map — a relaxation can re-point a node at a
    # predecessor discovered after it — so each path is materialized by a
    # memoized walk up the predecessor chain (the final_path /
    # first_hop_array pattern), never by trusting disc order.
    by_idx: dict[int, list[str]] = {idx[src]: [src]}
    for i in disc:
        chain: list[int] = []
        j = i
        while (p := by_idx.get(j)) is None:
            chain.append(j)
            j = pred[j]
        while chain:
            j = chain.pop()
            p = p + [names[j]]
            by_idx[j] = p
        dist[names[i]] = dist_arr[i]
        paths[names[i]] = p
    return dist, paths


def clear_routes(router: Router, sources: tuple[str, ...] = ("spf", "connected")) -> int:
    """Withdraw every FIB route whose provenance is in ``sources``.

    Used before reconvergence so stale paths through failed links vanish;
    static/BGP/bench routes survive.
    """
    doomed = [p for p, e in list(router.fib.routes()) if e.source in sources]
    return router.fib.withdraw_many(doomed)


def _full_reconverge(net: "Network", domain: str, ecmp: bool) -> int:
    view = net.domain_view(domain)
    for router in view.routers:
        clear_routes(router)
    return converge(net, domain, ecmp=ecmp)


def reconverge(net: "Network", domain: str = "core") -> int:
    """Recompute the IGP after a topology change — the public entry point.

    Thin wrapper over :func:`_reconverge_impl` that notifies the network's
    convergence tracer (``repro.obs.spans``) when one is attached, so the
    SPF re-run lands as a causal span in the churn trace.  Only this
    public entry is instrumented: the ``_full_reconverge`` → ``converge``
    internal path must not emit a second span for the same event.
    """
    tracer = getattr(net, "convergence_tracer", None)
    if tracer is None:
        return _reconverge_impl(net, domain)
    t0 = perf_counter()
    installs = _reconverge_impl(net, domain)
    tracer.on_reconverge(domain, installs, perf_counter() - t0)
    return installs


def _reconverge_impl(net: "Network", domain: str = "core") -> int:
    """Recompute the IGP after a topology change (link failure/restore).

    Models the end state of an SPF re-run triggered by LSA flooding.  The
    *time* reconvergence takes (hello/dead timers + SPF delay) is an
    experiment parameter, not simulated here — the resilience experiment
    applies it as a delay before calling this.

    Incremental: the edge set is diffed against the snapshot of the last
    convergence and SPF re-runs only for sources (ECMP: destinations)
    whose shortest-path trees the change can touch; their FIBs receive the
    withdraw/install *delta*.  Contents are always identical to a full
    ``clear_routes`` + :func:`converge`, which remains the fallback for
    anything the diff can't localize (membership or prefix churn, several
    edges appearing at once).  The ECMP flag of the previous convergence
    is preserved — a domain converged with ``ecmp=True`` reconverges with
    ECMP, where the pre-fast-path implementation silently downgraded to
    single-path.  Returns the number of FIB installs performed.

    Cache contract: a FIB's generation moves iff its contents changed, so
    the data plane's generation-guarded flow caches revalidate exactly
    where forwarding could differ.  Routers whose FIB the event did not
    touch — including every router on a no-op reconverge — keep their
    generation, and their caches, intact.
    """
    state: SpfState | None = net._spf_state.get(domain)
    view = net.domain_view(domain)
    ecmp = state.ecmp if state is not None else False
    if state is None or state.names != view.names:
        return _full_reconverge(net, domain, ecmp)
    prefixes_by_idx = [advertised_prefixes(r) for r in view.routers]
    if [tuple(p) for p in prefixes_by_idx] != state.prefixes:
        return _full_reconverge(net, domain, ecmp)
    if state.edges == view.edges:
        # Nothing moved; the installed routes are already the converged
        # state.  FIB generations stay put: a generation moves iff the
        # FIB's contents changed, so an unchanged FIB means every flow
        # cache derived from it is still valid.  The delta paths below
        # keep the same contract for unaffected routers.
        return 0
    removed = [key for key, m in state.edges.items() if view.edges.get(key) != m]
    added = [(key, m) for key, m in view.edges.items() if state.edges.get(key) != m]
    if len(added) > 1:
        # Several new edges can enable each other (chained improvements);
        # the single-edge attractiveness test below is only sound alone.
        return _full_reconverge(net, domain, ecmp)
    if ecmp:
        return _reconverge_ecmp_delta(net, domain, view, state,
                                      prefixes_by_idx, removed, added)
    return _reconverge_spt_delta(net, domain, view, state,
                                 prefixes_by_idx, removed, added)


def _added_edge_affects(dist, key: tuple[int, int], w: float) -> bool:
    """Could a new edge ``key`` with metric ``w`` enter this root's
    shortest-path DAG (improve or tie any distance, or extend reach)?"""
    u, v = key
    du, dv = dist[u], dist[v]
    fu, fv = du != inf, dv != inf
    if fu and fv:
        return du + w <= dv + TIE_EPS or dv + w <= du + TIE_EPS
    return fu or fv  # reaches across the old reachability frontier


def _reconverge_spt_delta(
    net: "Network", domain: str, view: "DomainView", state: SpfState,
    prefixes_by_idx: list[list[Prefix]],
    removed: list[tuple[int, int]], added: list[tuple[tuple[int, int], float]],
) -> int:
    n = len(view.names)
    affected: list[int] = []
    for si in range(n):
        dist, pred, _disc = state.spf[si]
        hit = False
        for u, v in removed:
            # An edge changes this source's result only if its tree used it
            # (non-tree equal-cost alternatives don't move dists or the
            # lexicographic winner).
            if pred[u] == v or pred[v] == u:
                hit = True
                break
        if not hit:
            for key, w in added:
                if _added_edge_affects(dist, key, w):
                    hit = True
                    break
        if hit:
            affected.append(si)
    installs = 0
    for si in affected:
        src = view.routers[si]
        desired: dict[Prefix, RouteEntry] = {}
        for prefix, entry in _install_spf_for_source(view, si, prefixes_by_idx):
            if entry.source == "spf":
                desired[prefix] = entry
        current = {
            p: e for p, e in src.fib.routes() if e.source == "spf"
        }
        src.fib.withdraw_many([p for p in current if p not in desired])
        installs += src.fib.install_many(
            [(p, e) for p, e in desired.items() if current.get(p) != e]
        )
        state.spf[si] = view.spf(si)
    state.edges = dict(view.edges)
    return installs


def _reconverge_ecmp_delta(
    net: "Network", domain: str, view: "DomainView", state: SpfState,
    prefixes_by_idx: list[list[Prefix]],
    removed: list[tuple[int, int]], added: list[tuple[tuple[int, int], float]],
) -> int:
    n = len(view.names)
    affected: set[int] = set()
    for di in range(n):
        dist = state.spf[di][0]
        hit = False
        for key in removed:
            u, v = key
            du, dv = dist[u], dist[v]
            if du == inf or dv == inf:
                continue  # edge was outside this root's reachable DAG
            w_old = state.edges[key]
            if costs_equal(du, dv + w_old) or costs_equal(dv, du + w_old):
                hit = True  # edge sat in the shortest-path DAG
                break
        if not hit:
            for key, w in added:
                if _added_edge_affects(dist, key, w):
                    hit = True
                    break
        if hit:
            affected.add(di)
    if not affected:
        state.edges = dict(view.edges)
        return 0
    # Prefixes advertised by several routers resolve last-writer-wins in
    # destination order, so every co-advertiser of an affected router's
    # prefixes must be replayed too (their stored distance arrays still
    # hold — only the affected ones are recomputed).
    order_pos = {di: k for k, di in enumerate(view.order_idx)}
    adv: dict[Prefix, list[int]] = {}
    for di in view.order_idx:
        for p in prefixes_by_idx[di]:
            adv.setdefault(p, []).append(di)
    process: set[int] = set(affected)
    for di in affected:
        for p in prefixes_by_idx[di]:
            process.update(adv[p])
    desired: dict[int, dict[Prefix, RouteEntry]] = {}
    for di in view.order_idx:
        if di not in process:
            continue
        if di in affected:
            dist = view.spf(di)[0]
            state.spf[di] = view.spf(di)
        else:
            dist = state.spf[di][0]
        prefixes = prefixes_by_idx[di]
        pos_di = order_pos[di]
        # A later co-advertiser we are *not* replaying already owns the FIB
        # entry wherever it is reachable — don't overwrite it.
        standing: dict[Prefix, list[int]] = {}
        for p in prefixes:
            standing[p] = [
                k for k in adv[p]
                if k not in process and order_pos[k] > pos_di
            ]
        for sj in view.order_idx:
            if sj == di:
                continue
            entry = _ecmp_entry_towards(view, sj, dist)
            if entry is None:
                continue
            cp = view.routers[sj].connected_prefixes
            d_j = desired.setdefault(sj, {})
            for p in prefixes:
                if p in cp:
                    continue
                if any(state.spf[k][0][sj] != inf for k in standing[p]):
                    continue
                d_j[p] = entry
    # Withdrawals: a prefix of an affected router leaves a FIB only when no
    # co-advertiser reaches that source anymore.
    affected_prefixes: set[Prefix] = set()
    for di in affected:
        affected_prefixes.update(prefixes_by_idx[di])
    installs = 0
    for sj in view.order_idx:
        src = view.routers[sj]
        d_j = desired.get(sj, {})
        cp = src.connected_prefixes
        withdraws = []
        for p in affected_prefixes:
            if p in cp or p in d_j:
                continue
            if src.fib.get(p) is None:
                continue
            if any(state.spf[k][0][sj] != inf for k in adv[p]):
                continue  # some advertiser still reaches sj; entry stands
            withdraws.append(p)
        src.fib.withdraw_many(withdraws)
        if d_j:
            current = src.fib
            installs += src.fib.install_many(
                [(p, e) for p, e in d_j.items() if current.get(p) != e]
            )
    state.edges = dict(view.edges)
    return installs


def spf_paths(net: "Network", src: str, dst: str, domain: str = "core") -> list[str]:
    """The deterministic shortest path ``src → dst`` as a node-name list."""
    view = net.domain_view(domain)
    si = view.idx.get(src)
    di = view.idx.get(dst)
    if si is None or di is None:
        raise nx.NetworkXNoPath(f"no path {src} -> {dst}")
    path = view.path_names(si, di)
    if path is None:
        raise nx.NetworkXNoPath(f"no path {src} -> {dst}")
    return path
