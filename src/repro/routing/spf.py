"""Link-state shortest-path routing (converged-OSPF model).

Rather than simulating LSA flooding packet-by-packet, :func:`converge`
computes what a converged OSPF domain would have computed — per-router
shortest-path trees over the configured metrics — and installs the
resulting routes into every router's FIB.  This is the standard modeling
shortcut for steady-state studies and it keeps the data-plane experiments
unconfounded by IGP transients.

The paper's claim C2 hinges on a *property* of this protocol family: the
metric is static, so the IGP cannot route around load.  :func:`converge`
therefore takes no notice of traffic — by design.  Constraint-based routing
that does see residual bandwidth lives in :mod:`repro.mpls.te`.

Customer equipment (``node.domain != domain``) is excluded: its addresses
may overlap between customers and must never enter the provider IGP
(claim C5); reachability for them is the VPN layer's job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

from repro.net.address import IPv4Address, Prefix
from repro.routing.fib import RouteEntry
from repro.routing.router import Router

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (topology -> routing)
    from repro.topology import DuplexLink, Network

__all__ = ["converge", "spf_paths", "advertised_prefixes"]


def advertised_prefixes(router: "Router") -> list[Prefix]:
    """Prefixes ``router`` contributes to the IGP.

    Loopback host route + connected link subnets + explicitly injected
    prefixes (access subnets for hosts it fronts).
    """
    out: list[Prefix] = []
    if router.loopback is not None:
        out.append(Prefix.of(router.loopback, 32))
    out.extend(router.connected_prefixes)
    out.extend(router.advertised_prefixes)
    return out


def _domain_graph(net: "Network", domain: str) -> nx.Graph:
    g = nx.Graph()
    for name, node in net.nodes.items():
        if isinstance(node, Router) and node.domain == domain:
            g.add_node(name)
    for dl in net.duplex_links:
        if not (dl.link_ab.up and dl.link_ba.up):
            continue  # failed links leave the topology (what flooding learns)
        if dl.a.name in g and dl.b.name in g:
            # Parallel links: keep the lowest metric (nx.Graph is simple).
            if g.has_edge(dl.a.name, dl.b.name):
                if g[dl.a.name][dl.b.name]["metric"] <= dl.metric:
                    continue
            g.add_edge(dl.a.name, dl.b.name, metric=dl.metric, duplex=dl)
    return g


def _egress_towards(dl: "DuplexLink", src_name: str) -> tuple[str, IPv4Address]:
    """(out_ifname, next_hop_addr) for ``src`` using duplex link ``dl``."""
    if dl.a.name == src_name:
        for addr, ifname in dl.b.addresses.items():
            if ifname == dl.if_ba.name:
                return dl.if_ab.name, addr
    else:
        for addr, ifname in dl.a.addresses.items():
            if ifname == dl.if_ab.name:
                return dl.if_ba.name, addr
    raise RuntimeError(f"no peer address on duplex link {dl.a.name}-{dl.b.name}")


def converge(net: "Network", domain: str = "core", ecmp: bool = False) -> int:
    """Compute and install SPF routes for every in-domain router.

    Returns the number of FIB entries installed.  Deterministic: equal-cost
    ties break toward the lexicographically smallest next-hop router name.
    With ``ecmp=True`` every equal-cost first hop is installed instead (the
    lowest-named one as primary, the rest as alternates) and routers spread
    *flows* across them by 5-tuple hash.
    """
    if ecmp:
        return _converge_ecmp(net, domain)
    g = _domain_graph(net, domain)
    routers = {
        name: net.nodes[name] for name in g.nodes
    }
    installed = 0
    for src_name, src in routers.items():
        assert isinstance(src, Router)
        # Connected routes first (most specific provenance).
        for subnet, ifname in src.connected_prefixes.items():
            src.fib.install(subnet, RouteEntry(ifname, None, 0.0, "connected"))
            installed += 1
        dist, paths = _deterministic_dijkstra(g, src_name)
        for dst_name, path in paths.items():
            if dst_name == src_name or len(path) < 2:
                continue
            nh_name = path[1]
            dl = g[src_name][nh_name]["duplex"]
            out_ifname, nh_addr = _egress_towards(dl, src_name)
            dst = routers[dst_name]
            assert isinstance(dst, Router)
            for prefix in advertised_prefixes(dst):
                if prefix in src.connected_prefixes:
                    continue  # already covered by the connected route
                src.fib.install(
                    prefix, RouteEntry(out_ifname, nh_addr, dist[dst_name], "spf")
                )
                installed += 1
    return installed


def _converge_ecmp(net: "Network", domain: str) -> int:
    """ECMP variant of :func:`converge`: per-destination relaxation.

    For destination D, router S's equal-cost first hops are the neighbours
    v with ``metric(S,v) + dist_D(v) == dist_D(S)`` — the standard OSPF
    multipath condition.  Assumes symmetric link metrics (true for every
    link :meth:`repro.topology.Network.connect` creates).
    """
    g = _domain_graph(net, domain)
    routers = {name: net.nodes[name] for name in g.nodes}
    installed = 0
    for src in routers.values():
        assert isinstance(src, Router)
        for subnet, ifname in src.connected_prefixes.items():
            src.fib.install(subnet, RouteEntry(ifname, None, 0.0, "connected"))
            installed += 1
    for dst_name, dst in routers.items():
        assert isinstance(dst, Router)
        dist, _paths = _deterministic_dijkstra(g, dst_name)
        prefixes = advertised_prefixes(dst)
        for src_name, src in routers.items():
            assert isinstance(src, Router)
            if src_name == dst_name or src_name not in dist:
                continue
            candidates: list[tuple[str, IPv4Address]] = []
            for v in sorted(g.neighbors(src_name)):
                if v not in dist:
                    continue
                if abs(g[src_name][v]["metric"] + dist[v] - dist[src_name]) <= 1e-12:
                    dl = g[src_name][v]["duplex"]
                    out_ifname, nh_addr = _egress_towards(dl, src_name)
                    candidates.append((out_ifname, nh_addr))
            if not candidates:
                continue
            (primary_if, primary_nh), *alts = candidates
            for prefix in prefixes:
                if prefix in src.connected_prefixes:
                    continue
                src.fib.install(
                    prefix,
                    RouteEntry(primary_if, primary_nh, dist[src_name], "spf",
                               alternates=tuple(alts)),
                )
                installed += 1
    return installed


def _deterministic_dijkstra(
    g: nx.Graph, src: str
) -> tuple[dict[str, float], dict[str, list[str]]]:
    """Dijkstra with lexicographic tie-breaking on the path's node names.

    networkx's implementation is deterministic only up to adjacency-dict
    order; we make equal-cost choices explicit so FIBs are identical across
    runs and platforms regardless of construction order.
    """
    import heapq

    dist: dict[str, float] = {src: 0.0}
    paths: dict[str, list[str]] = {src: [src]}
    heap: list[tuple[float, tuple[str, ...], str]] = [(0.0, (src,), src)]
    done: set[str] = set()
    while heap:
        d, path_key, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        paths[u] = list(path_key)
        for v in sorted(g.neighbors(u)):
            if v in done:
                continue
            nd = d + g[u][v]["metric"]
            if v not in dist or nd < dist[v] - 1e-12 or (
                abs(nd - dist[v]) <= 1e-12 and path_key + (v,) < tuple(paths.get(v, ()))
            ):
                dist[v] = nd
                paths[v] = list(path_key) + [v]
                heapq.heappush(heap, (nd, path_key + (v,), v))
    return dist, paths


def clear_routes(router: Router, sources: tuple[str, ...] = ("spf", "connected")) -> int:
    """Withdraw every FIB route whose provenance is in ``sources``.

    Used before reconvergence so stale paths through failed links vanish;
    static/BGP/bench routes survive.
    """
    removed = 0
    for prefix, entry in list(router.fib.routes()):
        if entry.source in sources:
            router.fib.withdraw(prefix)
            removed += 1
    return removed


def reconverge(net: "Network", domain: str = "core") -> int:
    """Recompute the IGP after a topology change (link failure/restore).

    Models the end state of an SPF re-run triggered by LSA flooding: every
    in-domain router's SPF/connected routes are flushed and recomputed over
    the current link states.  The *time* reconvergence takes (hello/dead
    timers + SPF delay) is an experiment parameter, not simulated here —
    the resilience experiment applies it as a delay before calling this.
    """
    g = _domain_graph(net, domain)
    for name in g.nodes:
        node = net.nodes[name]
        if isinstance(node, Router):
            clear_routes(node)
    return converge(net, domain)


def spf_paths(net: "Network", src: str, dst: str, domain: str = "core") -> list[str]:
    """The deterministic shortest path ``src → dst`` as a node-name list."""
    g = _domain_graph(net, domain)
    _dist, paths = _deterministic_dijkstra(g, src)
    if dst not in paths:
        raise nx.NetworkXNoPath(f"no path {src} -> {dst}")
    return paths[dst]
