"""Conventional IP router: longest-prefix-match forwarding.

This is the baseline data plane of claim C2/C4 — every packet, at every
hop, gets a full header inspection and an LPM lookup against the FIB.  The
LSR in :mod:`repro.mpls.lsr` subclasses this so that an MPLS backbone can
still route unlabeled packets (the mixed deployment of the paper's Fig. 4).
"""

from __future__ import annotations

import zlib

from repro.net.drops import DropReason
from repro.net.node import Node
from repro.net.packet import Packet
from repro.routing.fib import Fib, RouteEntry
from repro.sim.engine import bind

__all__ = ["Router", "flow_hash"]


def flow_hash(pkt: Packet) -> int:
    """Stable per-flow hash over the 5-tuple (the classic ECMP key).

    CRC32 rather than ``hash()`` so path selection is identical across
    processes and Python versions — determinism again.
    """
    ip = pkt.ip
    key = f"{ip.src.value}|{ip.dst.value}|{ip.proto}|{ip.src_port}|{ip.dst_port}"
    return zlib.crc32(key.encode("ascii"))


class Router(Node):
    """IP router with a trie FIB."""

    def __init__(self, sim, name, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.fib = Fib()
        # Extra prefixes this router injects into the IGP (host subnets it
        # fronts, redistributed statics...).
        self.advertised_prefixes: set = set()

    # ------------------------------------------------------------------
    def handle(self, pkt: Packet, ifname: str) -> None:
        if pkt.mpls_stack:
            # Labeled packet at a non-MPLS router: the deployment scenario of
            # Fig. 4 never lets this happen (LSPs terminate at LSR edges);
            # treat it as a configuration error rather than silently routing.
            self.drop(pkt, DropReason.LABELED_AT_IP_ROUTER)
            return
        if self.owns(pkt.ip.dst):
            self.deliver_local(pkt)
            return
        self.after_processing(
            self.processing.ip_lookup_s, bind(self._forward_ip, pkt)
        )

    def _forward_ip(self, pkt: Packet) -> None:
        if pkt.decrement_ttl() <= 0:
            self.drop(pkt, DropReason.TTL)
            return
        entry = self.fib.lookup(pkt.ip.dst)
        if entry is None:
            self.drop(pkt, DropReason.NO_ROUTE)
            return
        self.dispatch(pkt, entry)

    def dispatch(self, pkt: Packet, entry: RouteEntry) -> None:
        """Send ``pkt`` out the interface selected by ``entry``.

        With ECMP alternates present, the egress is chosen by the flow
        hash — all packets of one flow share a path (no reordering), while
        distinct flows spread across the equal-cost set.  Split out so
        subclasses (LSR/PE) can reuse the IP slow path.
        """
        if entry.alternates:
            paths = entry.all_paths
            out_ifname, _nh = paths[flow_hash(pkt) % len(paths)]
            self.transmit(pkt, out_ifname)
            return
        self.transmit(pkt, entry.out_ifname)
