"""Conventional IP router: longest-prefix-match forwarding.

This is the baseline data plane of claim C2/C4 — every packet, at every
hop, gets a full header inspection and an LPM lookup against the FIB.  The
LSR in :mod:`repro.mpls.lsr` subclasses this so that an MPLS backbone can
still route unlabeled packets (the mixed deployment of the paper's Fig. 4).

Forwarding itself lives in :class:`repro.dataplane.ForwardingPipeline`;
this class composes the pipeline with just the lookup and dispatch stages
(no label-op, no VRF demux).  ``flow_hash`` is re-exported from
``repro.dataplane`` for backwards compatibility.
"""

from __future__ import annotations

from repro.dataplane.pipeline import ForwardingPipeline, flow_hash
from repro.net.node import Node
from repro.net.packet import Packet
from repro.routing.fib import Fib, RouteEntry

__all__ = ["Router", "flow_hash"]


class Router(Node):
    """IP router with a trie FIB."""

    def __init__(self, sim, name, **kw) -> None:
        super().__init__(sim, name, **kw)
        self.fib = Fib()
        # Extra prefixes this router injects into the IGP (host subnets it
        # fronts, redistributed statics...).
        self.advertised_prefixes: set = set()
        # One staged forwarding engine, shared (by composition) with the
        # Lsr and PeRouter subclasses — see repro.dataplane.pipeline.
        self.pipeline = ForwardingPipeline(self, self.fib)

    # ------------------------------------------------------------------
    def handle(self, pkt: Packet, ifname: str) -> None:
        self.pipeline.ingress(pkt, ifname)

    def receive_batch(self, items: list[tuple[Packet, str]]) -> None:
        # Vector arrival (kernel burst extraction): the pipeline inlines
        # the receive prologue and every stage in one hoisted loop, with
        # scalar-identical per-packet semantics.
        self.pipeline.ingress_batch(items)

    def dispatch(self, pkt: Packet, entry: RouteEntry) -> None:
        """Send ``pkt`` out the interface selected by ``entry`` (ECMP-aware).

        Kept as a public helper for gateways that resolve routes
        themselves (e.g. the IPsec gateway); delegates to the pipeline's
        egress-dispatch stage.
        """
        self.pipeline.dispatch(pkt, entry)
