"""Reference (pre-fast-path) control-plane implementations.

These are the straight-line implementations of SPF convergence and LDP
distribution as they existed before the control-plane fast path: a
path-tuple-keyed Dijkstra, a networkx graph rebuilt on every call, one
``fib.install`` per route, and a ``reconverge`` that flushes and
recomputes the whole domain.

They are kept for two reasons:

* **Parity** — ``tests/test_spf_parity.py`` asserts the fast path in
  :mod:`repro.routing.spf` / :mod:`repro.mpls.ldp` produces bit-identical
  FIB/LFIB/FTN contents on the same topologies.
* **Self-calibrating benchmarks** — ``benchmarks/
  test_control_plane_performance.py`` measures the speedup live against
  this module instead of hard-coding machine-dependent baselines.

Nothing in the library imports this module; it is a test/bench oracle
only, so keep it byte-for-byte faithful to the old semantics rather than
clean or fast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

from repro.mpls.label import EXPLICIT_NULL, IMPLICIT_NULL
from repro.mpls.ldp import LdpResult
from repro.mpls.lfib import LabelOp, LfibEntry, Nhlfe
from repro.mpls.lsr import Lsr
from repro.net.address import IPv4Address, Prefix
from repro.routing.fib import Fib, RouteEntry, _TrieNode
from repro.routing.router import Router
from repro.routing.spf import advertised_prefixes

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import DuplexLink, Network

__all__ = [
    "converge_reference",
    "reconverge_reference",
    "run_ldp_reference",
    "deterministic_dijkstra_reference",
    "domain_graph_reference",
    "clear_routes_reference",
]


def _fib_install_reference(fib: Fib, prefix: Prefix | str, entry: RouteEntry) -> None:
    """Pre-PR ``Fib.install``: per-bit trie walk + generation bump per route
    (no leaf-node cache, no batching)."""
    pfx = Prefix.parse(prefix) if isinstance(prefix, str) else prefix
    node = fib._root
    net = pfx.network
    for depth in range(pfx.length):
        bit = (net >> (31 - depth)) & 1
        if bit:
            if node.right is None:
                node.right = _TrieNode()
            node = node.right
        else:
            if node.left is None:
                node.left = _TrieNode()
            node = node.left
    node.entry = entry
    fib._routes[pfx] = entry
    fib.generation += 1


def _fib_withdraw_reference(fib: Fib, pfx: Prefix) -> bool:
    """Pre-PR ``Fib.withdraw``: per-bit walk, one generation bump each."""
    if pfx not in fib._routes:
        return False
    del fib._routes[pfx]
    fib.generation += 1
    node: _TrieNode | None = fib._root
    net = pfx.network
    for depth in range(pfx.length):
        if node is None:
            return False
        bit = (net >> (31 - depth)) & 1
        node = node.right if bit else node.left
    if node is not None:
        node.entry = None
    return True


def clear_routes_reference(
    router: Router, sources: tuple[str, ...] = ("spf", "connected")
) -> int:
    """Pre-PR ``clear_routes``: one withdraw per route."""
    removed = 0
    for prefix, entry in list(router.fib.routes()):
        if entry.source in sources:
            _fib_withdraw_reference(router.fib, prefix)
            removed += 1
    return removed


def domain_graph_reference(net: "Network", domain: str) -> nx.Graph:
    g = nx.Graph()
    for name, node in net.nodes.items():
        if isinstance(node, Router) and node.domain == domain:
            g.add_node(name)
    for dl in net.duplex_links:
        if not (dl.link_ab.up and dl.link_ba.up):
            continue  # failed links leave the topology (what flooding learns)
        if dl.a.name in g and dl.b.name in g:
            # Parallel links: keep the lowest metric (nx.Graph is simple).
            if g.has_edge(dl.a.name, dl.b.name):
                if g[dl.a.name][dl.b.name]["metric"] <= dl.metric:
                    continue
            g.add_edge(dl.a.name, dl.b.name, metric=dl.metric, duplex=dl)
    return g


def _egress_towards_reference(dl: "DuplexLink", src_name: str) -> tuple[str, IPv4Address]:
    """(out_ifname, next_hop_addr) via a linear scan of the peer's addresses."""
    if dl.a.name == src_name:
        for addr, ifname in dl.b.addresses.items():
            if ifname == dl.if_ba.name:
                return dl.if_ab.name, addr
    else:
        for addr, ifname in dl.a.addresses.items():
            if ifname == dl.if_ab.name:
                return dl.if_ba.name, addr
    raise RuntimeError(f"no peer address on duplex link {dl.a.name}-{dl.b.name}")


def deterministic_dijkstra_reference(
    g: nx.Graph, src: str
) -> tuple[dict[str, float], dict[str, list[str]]]:
    """Dijkstra with lexicographic tie-breaking on path-tuple heap keys."""
    import heapq

    dist: dict[str, float] = {src: 0.0}
    paths: dict[str, list[str]] = {src: [src]}
    heap: list[tuple[float, tuple[str, ...], str]] = [(0.0, (src,), src)]
    done: set[str] = set()
    while heap:
        d, path_key, u = heapq.heappop(heap)
        if u in done:
            continue
        done.add(u)
        paths[u] = list(path_key)
        for v in sorted(g.neighbors(u)):
            if v in done:
                continue
            nd = d + g[u][v]["metric"]
            if v not in dist or nd < dist[v] - 1e-12 or (
                abs(nd - dist[v]) <= 1e-12 and path_key + (v,) < tuple(paths.get(v, ()))
            ):
                dist[v] = nd
                paths[v] = list(path_key) + [v]
                heapq.heappush(heap, (nd, path_key + (v,), v))
    return dist, paths


def converge_reference(net: "Network", domain: str = "core", ecmp: bool = False) -> int:
    """Per-source Dijkstra with one ``fib.install`` per route (pre-PR shape)."""
    if ecmp:
        return _converge_ecmp_reference(net, domain)
    g = domain_graph_reference(net, domain)
    routers = {
        name: net.nodes[name] for name in g.nodes
    }
    installed = 0
    for src_name, src in routers.items():
        assert isinstance(src, Router)
        # Connected routes first (most specific provenance).
        for subnet, ifname in src.connected_prefixes.items():
            _fib_install_reference(src.fib, subnet, RouteEntry(ifname, None, 0.0, "connected"))
            installed += 1
        dist, paths = deterministic_dijkstra_reference(g, src_name)
        for dst_name, path in paths.items():
            if dst_name == src_name or len(path) < 2:
                continue
            nh_name = path[1]
            dl = g[src_name][nh_name]["duplex"]
            out_ifname, nh_addr = _egress_towards_reference(dl, src_name)
            dst = routers[dst_name]
            assert isinstance(dst, Router)
            for prefix in advertised_prefixes(dst):
                if prefix in src.connected_prefixes:
                    continue  # already covered by the connected route
                _fib_install_reference(
                    src.fib, prefix, RouteEntry(out_ifname, nh_addr, dist[dst_name], "spf")
                )
                installed += 1
    return installed


def _converge_ecmp_reference(net: "Network", domain: str) -> int:
    """Pre-PR ECMP converge: one destination-rooted Dijkstra per destination."""
    g = domain_graph_reference(net, domain)
    routers = {name: net.nodes[name] for name in g.nodes}
    installed = 0
    for src in routers.values():
        assert isinstance(src, Router)
        for subnet, ifname in src.connected_prefixes.items():
            _fib_install_reference(src.fib, subnet, RouteEntry(ifname, None, 0.0, "connected"))
            installed += 1
    for dst_name, dst in routers.items():
        assert isinstance(dst, Router)
        dist, _paths = deterministic_dijkstra_reference(g, dst_name)
        prefixes = advertised_prefixes(dst)
        for src_name, src in routers.items():
            assert isinstance(src, Router)
            if src_name == dst_name or src_name not in dist:
                continue
            candidates: list[tuple[str, IPv4Address]] = []
            for v in sorted(g.neighbors(src_name)):
                if v not in dist:
                    continue
                if abs(g[src_name][v]["metric"] + dist[v] - dist[src_name]) <= 1e-12:
                    dl = g[src_name][v]["duplex"]
                    out_ifname, nh_addr = _egress_towards_reference(dl, src_name)
                    candidates.append((out_ifname, nh_addr))
            if not candidates:
                continue
            (primary_if, primary_nh), *alts = candidates
            for prefix in prefixes:
                if prefix in src.connected_prefixes:
                    continue
                _fib_install_reference(
                    src.fib, prefix,
                    RouteEntry(primary_if, primary_nh, dist[src_name], "spf",
                               alternates=tuple(alts)),
                )
                installed += 1
    return installed


def reconverge_reference(net: "Network", domain: str = "core") -> int:
    """Pre-PR reconverge: flush every in-domain FIB, recompute from scratch."""
    g = domain_graph_reference(net, domain)
    for name in g.nodes:
        node = net.nodes[name]
        if isinstance(node, Router):
            clear_routes_reference(node)
    return converge_reference(net, domain)


def run_ldp_reference(
    net: "Network",
    fecs: list[Prefix] | None = None,
    domain: str = "core",
    php: bool = True,
    use_explicit_null: bool = False,
) -> LdpResult:
    """Pre-PR LDP: one Dijkstra per (FEC, node), immediate LFIB installs."""
    if php and use_explicit_null:
        raise ValueError("php and explicit-null are mutually exclusive")

    g = domain_graph_reference(net, domain)
    lsrs: dict[str, Lsr] = {
        name: net.nodes[name]  # type: ignore[misc]
        for name in g.nodes
        if isinstance(net.nodes[name], Lsr)
    }
    result = LdpResult()
    session_pairs = [
        (u, v) for u, v in g.edges if u in lsrs and v in lsrs
    ]
    result.sessions = len(session_pairs)
    net.counters.incr("ldp.sessions", len(session_pairs))

    if fecs is None:
        fecs = []
        for lsr in lsrs.values():
            if lsr.loopback is not None:
                fecs.append(Prefix.of(lsr.loopback, 32))
            fecs.extend(sorted(lsr.advertised_prefixes))

    owner_of: dict[Prefix, str] = {}
    for name, lsr in lsrs.items():
        if lsr.loopback is not None:
            owner_of[Prefix.of(lsr.loopback, 32)] = name
        for p in lsr.connected_prefixes:
            owner_of.setdefault(p, name)
        for p in lsr.advertised_prefixes:
            owner_of.setdefault(p, name)

    for fec in fecs:
        egress_name = owner_of.get(fec)
        if egress_name is None:
            continue  # FEC not originated by an LSR in this domain
        bindings = _distribute_one_reference(
            net, g, lsrs, fec, egress_name, php, use_explicit_null, result
        )
        result.bindings[fec] = bindings
        msgs = sum(
            1
            for u, v in session_pairs
            for end in (u, v)
            if end in bindings or end == egress_name
        )
        result.mapping_messages += msgs
        net.counters.incr("ldp.mapping_msgs", msgs)
    net.trace.publish(
        "ldp.converged",
        net.sim.now,
        sessions=result.sessions,
        mapping_messages=result.mapping_messages,
        lfib_entries=result.lfib_entries,
        ftn_entries=result.ftn_entries,
        fecs=len(result.bindings),
    )
    return result


def _distribute_one_reference(
    net: "Network",
    g,
    lsrs: dict[str, Lsr],
    fec: Prefix,
    egress_name: str,
    php: bool,
    use_explicit_null: bool,
    result: LdpResult,
) -> dict[str, int]:
    egress = lsrs[egress_name]
    bindings: dict[str, int] = {}

    if php:
        bindings[egress_name] = IMPLICIT_NULL
    elif use_explicit_null:
        bindings[egress_name] = EXPLICIT_NULL
        egress.lfib.install(
            EXPLICIT_NULL, LfibEntry(LabelOp.POP_PROCESS, lsp_id=f"ldp:{fec}")
        )
        result.lfib_entries += 1
    else:
        label = egress.labels.allocate()
        bindings[egress_name] = label
        egress.lfib.install(label, LfibEntry(LabelOp.POP_PROCESS, lsp_id=f"ldp:{fec}"))
        result.lfib_entries += 1

    dist_from_egress, _ = deterministic_dijkstra_reference(g, egress_name)
    order = sorted(
        (name for name in lsrs if name != egress_name and name in dist_from_egress),
        key=lambda n: (dist_from_egress[n], n),
    )
    for name in order:
        lsr = lsrs[name]
        _dist, paths = deterministic_dijkstra_reference(g, name)
        if egress_name not in paths or len(paths[egress_name]) < 2:
            continue  # partitioned
        nh_name = paths[egress_name][1]
        if nh_name not in bindings:
            continue  # next hop is not label-capable for this FEC
        bindings[name] = lsr.labels.allocate()

        dl = g[name][nh_name]["duplex"]
        out_ifname, _nh_addr = _egress_towards_reference(dl, name)
        downstream = bindings[nh_name]
        if downstream == IMPLICIT_NULL:
            entry = LfibEntry(LabelOp.POP, out_ifname=out_ifname, lsp_id=f"ldp:{fec}")
        else:
            entry = LfibEntry(
                LabelOp.SWAP,
                out_label=downstream,
                out_ifname=out_ifname,
                lsp_id=f"ldp:{fec}",
            )
        lsr.lfib.install(bindings[name], entry)
        result.lfib_entries += 1

        lsr.ftn.bind(fec, Nhlfe(out_ifname, (downstream,), lsp_id=f"ldp:{fec}"))
        result.ftn_entries += 1
    return bindings
