"""Control-plane fast path primitives: indexed SPF over a cached domain view.

The pre-PR control plane rebuilt a networkx graph and ran a Dijkstra whose
heap keys were whole path tuples — O(path length) comparisons and one
tuple allocation per relaxation — for every source, on every call.  This
module replaces that with:

* :class:`DomainView` — an integer-indexed snapshot of one routing domain
  (sorted-name index assignment, adjacency lists, per-neighbour egress
  info precomputed from the duplex links), cached on the
  :class:`~repro.topology.Network` behind its ``topology_generation``
  counter, the same structural-invalidation pattern the data plane's
  ``GenCache`` uses.
* :func:`dijkstra_pred` — a predecessor-map Dijkstra with heap keys
  ``(dist, node_index)``.  Because indices are assigned in sorted-name
  order, integer comparison *is* lexicographic name comparison, and the
  exact tie-break of the reference implementation (smallest path as a
  name sequence) is preserved by materializing candidate paths lazily —
  only when two candidates actually tie on cost.
* :class:`SpfState` — the per-domain snapshot (edges + per-source SPF
  arrays) that :func:`repro.routing.spf.reconverge` diffs against to
  recompute only the sources whose shortest-path trees a link event
  touched.

Per-source results are stored as compact ``array`` triples
``(dist, pred, disc)`` — ``disc`` is the discovery order, which the
converge code must iterate to reproduce the reference FIB contents
bit-for-bit: prefixes advertised by several routers (link /30s) are
installed last-writer-wins, so destination order is part of the contract.

Assumes link metrics are positive and far larger than the 1e-12 tie
epsilon (true for every topology the builders create); under that
assumption pop order among equal-cost nodes cannot change any result.
"""

from __future__ import annotations

import heapq
from array import array
from dataclasses import dataclass, field
from math import inf
from typing import TYPE_CHECKING

from repro.net.address import IPv4Address, Prefix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routing.router import Router
    from repro.topology import DuplexLink, Network

__all__ = [
    "TIE_EPS",
    "costs_equal",
    "dijkstra_pred",
    "first_hop_array",
    "DomainView",
    "SpfState",
]

#: Cost comparison tolerance.  One shared epsilon for *every* equal-cost
#: decision (Dijkstra tie-break, ECMP multipath condition, incremental
#: reconvergence tests) so float metric sums like 0.1+0.2 vs 0.3 are ties
#: everywhere or nowhere.
TIE_EPS = 1e-12


def costs_equal(a: float, b: float) -> bool:
    """True when two path costs are equal under the shared tolerance."""
    return abs(a - b) <= TIE_EPS


def dijkstra_pred(
    adj: list[list[tuple[int, float]]], src: int
) -> tuple[list[float], list[int], list[int]]:
    """Predecessor-map Dijkstra with exact lexicographic tie-breaking.

    ``adj[u]`` must be sorted by neighbour index (== sorted by name).
    Returns ``(dist, pred, disc)``: distance per node (``inf`` when
    unreachable), predecessor index (-1 for the source and unreached
    nodes), and indices in discovery order (source first).  The tree is
    identical to the reference path-tuple Dijkstra: among equal-cost
    candidates the one whose full node-name path is lexicographically
    smallest wins.
    """
    n = len(adj)
    dist: list[float] = [inf] * n
    pred: list[int] = [-1] * n
    disc: list[int] = [src]
    done = bytearray(n)
    dist[src] = 0.0
    heap: list[tuple[float, int]] = [(0.0, src)]
    pop, push = heapq.heappop, heapq.heappush
    # Final paths, materialized lazily: only consulted when two candidates
    # tie on cost, so the common case never allocates a path tuple.
    paths: dict[int, tuple[int, ...]] = {src: (src,)}
    eps = TIE_EPS

    def final_path(i: int) -> tuple[int, ...]:
        p = paths.get(i)
        if p is not None:
            return p
        stack: list[int] = []
        j = i
        while True:
            p = paths.get(j)
            if p is not None:
                break
            stack.append(j)
            j = pred[j]
        while stack:
            j = stack.pop()
            p = p + (j,)
            paths[j] = p
        return p

    while heap:
        d, u = pop(heap)
        if done[u]:
            continue
        done[u] = 1
        for v, w in adj[u]:
            if done[v]:
                continue
            nd = d + w
            dv = dist[v]
            if dv == inf:
                dist[v] = nd
                pred[v] = u
                disc.append(v)
                push(heap, (nd, v))
            elif nd < dv - eps:
                dist[v] = nd
                pred[v] = u
                push(heap, (nd, v))
            elif nd <= dv + eps:
                pu = pred[v]
                # Equal cost: keep the lexicographically smaller full path.
                # pred values compared here are finalized (their dist is
                # strictly smaller), so their paths are stable.
                if pu != u and final_path(u) + (v,) < final_path(pu) + (v,):
                    dist[v] = nd
                    pred[v] = u
                    push(heap, (nd, v))
    return dist, pred, disc


def first_hop_array(pred, disc, src: int, n: int) -> list[int]:
    """First-hop index per node for a tree rooted at ``src`` (-1 when
    undefined: the source itself and unreachable nodes).

    ``disc`` is first-*discovery* order, which is not topological with
    respect to the final ``pred`` map (a relaxation can re-point a node at
    a predecessor discovered later), so each entry is resolved by walking
    the predecessor chain, memoizing every node on the way — O(V) total.
    """
    fh = [-1] * n
    for k in range(1, len(disc)):
        v = disc[k]
        if fh[v] != -1:
            continue
        stack: list[int] = []
        j = v
        while fh[j] == -1 and pred[j] != src:
            stack.append(j)
            j = pred[j]
        if fh[j] != -1:
            h = fh[j]
        else:
            h = j  # pred[j] is the source: j is its own first hop
            fh[j] = j
        while stack:
            fh[stack.pop()] = h
    return fh


@dataclass
class SpfState:
    """Per-domain snapshot :func:`~repro.routing.spf.reconverge` diffs against.

    ``spf[i]`` holds the ``(dist, pred, disc)`` arrays computed for source
    (or, in ECMP mode, destination) index ``i`` at the last convergence;
    ``edges`` is the edge→metric map of the topology those arrays were
    computed on.  ``prefixes`` snapshots each router's advertised prefix
    list — prefix churn (``attach_host`` after converge) cannot be located
    from an edge diff, so it forces a full recompute.
    """

    ecmp: bool
    names: list[str]
    edges: dict[tuple[int, int], float]
    prefixes: list[tuple[Prefix, ...]]
    spf: dict[int, tuple[array, array, array]] = field(default_factory=dict)


class DomainView:
    """Indexed, generation-stamped snapshot of one routing domain.

    Node indices are assigned in sorted-name order so integer order ==
    lexicographic name order (what the deterministic tie-break needs).
    ``order_idx`` preserves :attr:`Network.nodes` insertion order — the
    iteration order of the reference implementation, and therefore part
    of the FIB-content contract for shared prefixes.

    Built by :meth:`repro.topology.Network.domain_view`, which caches one
    view per domain and rebuilds when ``topology_generation`` moves or the
    domain membership changes (``node.domain`` flips don't bump the
    counter).  Per-source SPF results are memoized on the view, so they
    share its lifetime exactly.
    """

    __slots__ = (
        "generation", "domain", "names", "idx", "order_names", "order_idx",
        "routers", "adj", "nbr", "edges", "duplex", "_spf",
    )

    def __init__(self) -> None:
        self.generation: int = -1
        self.domain: str = ""
        self.names: list[str] = []
        self.idx: dict[str, int] = {}
        self.order_names: list[str] = []
        self.order_idx: list[int] = []
        self.routers: list["Router"] = []
        self.adj: list[list[tuple[int, float]]] = []
        # nbr[i][j] = (duplex, out_ifname, next_hop_addr) for i -> j over
        # the lowest-metric parallel link.
        self.nbr: list[dict[int, tuple["DuplexLink", str, IPv4Address]]] = []
        self.edges: dict[tuple[int, int], float] = {}
        self.duplex: dict[tuple[int, int], "DuplexLink"] = {}
        self._spf: dict[int, tuple[array, array, array]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, net: "Network", domain: str, members: list[str]) -> "DomainView":
        view = cls()
        view.generation = net.topology_generation
        view.domain = domain
        names = sorted(members)
        idx = {name: i for i, name in enumerate(names)}
        view.names = names
        view.idx = idx
        view.order_names = members
        view.order_idx = [idx[name] for name in members]
        view.routers = [net.nodes[name] for name in names]  # type: ignore[misc]

        # Lowest-metric live duplex per adjacency; ties keep the first link
        # in duplex_links order (matches the reference graph builder).
        best: dict[tuple[int, int], tuple[float, "DuplexLink"]] = {}
        for dl in net.duplex_links:
            if not (dl.link_ab.up and dl.link_ba.up):
                continue
            ia = idx.get(dl.a.name)
            ib = idx.get(dl.b.name)
            if ia is None or ib is None:
                continue
            key = (ia, ib) if ia < ib else (ib, ia)
            cur = best.get(key)
            if cur is None or dl.metric < cur[0]:
                best[key] = (dl.metric, dl)

        n = len(names)
        adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        nbr: list[dict[int, tuple["DuplexLink", str, IPv4Address]]] = [
            {} for _ in range(n)
        ]
        for key, (metric, dl) in best.items():
            i, j = key
            adj[i].append((j, metric))
            adj[j].append((i, metric))
            ia = idx[dl.a.name]
            ib = idx[dl.b.name]
            eg_a = dl.egress_a or _egress_scan(dl, dl.a.name)
            eg_b = dl.egress_b or _egress_scan(dl, dl.b.name)
            nbr[ia][ib] = (dl, eg_a[0], eg_a[1])
            nbr[ib][ia] = (dl, eg_b[0], eg_b[1])
            view.edges[key] = metric
            view.duplex[key] = dl
        for lst in adj:
            lst.sort()
        view.adj = adj
        view.nbr = nbr
        return view

    # ------------------------------------------------------------------
    def spf(self, i: int) -> tuple[array, array, array]:
        """Memoized SPF rooted at index ``i`` (symmetric metrics make one
        destination-rooted run serve every source, and vice versa)."""
        r = self._spf.get(i)
        if r is None:
            dist, pred, disc = dijkstra_pred(self.adj, i)
            r = (array("d", dist), array("q", pred), array("q", disc))
            self._spf[i] = r
        return r

    def first_hops(self, i: int) -> list[int]:
        """First-hop index per node for source ``i`` (undefined entries -1)."""
        _dist, pred, disc = self.spf(i)
        return first_hop_array(pred, disc, i, len(self.names))

    def path_names(self, i: int, j: int) -> list[str] | None:
        """Node-name shortest path ``i → j``; None when unreachable."""
        dist, pred, _disc = self.spf(i)
        if dist[j] == inf:
            return None
        rev = []
        k = j
        while k != i:
            rev.append(k)
            k = pred[k]
        rev.append(i)
        names = self.names
        return [names[k] for k in reversed(rev)]


def _egress_scan(dl: "DuplexLink", src_name: str) -> tuple[str, IPv4Address]:
    """Fallback egress resolution for hand-built DuplexLinks that predate
    the connect-time precompute (scan the peer's address table)."""
    if dl.a.name == src_name:
        for addr, ifname in dl.b.addresses.items():
            if ifname == dl.if_ba.name:
                return dl.if_ab.name, addr
    else:
        for addr, ifname in dl.a.addresses.items():
            if ifname == dl.if_ab.name:
                return dl.if_ba.name, addr
    raise RuntimeError(f"no peer address on duplex link {dl.a.name}-{dl.b.name}")
