"""IP routing: FIB with longest-prefix match, SPF control plane, router node."""

from repro.routing.fib import Fib, RouteEntry
from repro.routing.router import Router
from repro.routing.spf import (
    advertised_prefixes,
    clear_routes,
    converge,
    reconverge,
    spf_paths,
)

__all__ = [
    "Fib", "RouteEntry", "Router", "advertised_prefixes", "clear_routes",
    "converge", "reconverge", "spf_paths",
]
