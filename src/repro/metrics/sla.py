"""Service Level Agreement specification and conformance checking.

The paper's promise (§3.1, §5) is "granular Service Level Agreements with
assured performance" extended "from customer site to customer site".  An
:class:`SlaSpec` captures the per-class commitments (delay budget, jitter
budget, loss budget, assured throughput) and :func:`evaluate` renders the
verdict for a measured flow — the pass/fail column of experiment E5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.metrics.stats import FlowStats

__all__ = ["SlaSpec", "SlaVerdict", "evaluate", "VOICE_SLA", "DATA_SLA", "BEST_EFFORT_SLA"]


@dataclass(frozen=True, slots=True)
class SlaSpec:
    """Per-class commitments; ``None`` means not committed."""

    name: str
    max_p99_delay_s: Optional[float] = None
    max_jitter_s: Optional[float] = None
    max_loss_ratio: Optional[float] = None
    min_throughput_bps: Optional[float] = None


@dataclass(frozen=True, slots=True)
class SlaVerdict:
    """Outcome of one SLA check."""

    spec: SlaSpec
    stats: FlowStats
    delay_ok: bool
    jitter_ok: bool
    loss_ok: bool
    throughput_ok: bool

    @property
    def conformant(self) -> bool:
        return self.delay_ok and self.jitter_ok and self.loss_ok and self.throughput_ok

    def violations(self) -> list[str]:
        out = []
        if not self.delay_ok:
            out.append(
                f"p99 delay {self.stats.p99_delay_s*1e3:.2f}ms > "
                f"{self.spec.max_p99_delay_s*1e3:.2f}ms"  # type: ignore[operator]
            )
        if not self.jitter_ok:
            out.append(
                f"jitter {self.stats.jitter_rfc3550_s*1e3:.2f}ms > "
                f"{self.spec.max_jitter_s*1e3:.2f}ms"  # type: ignore[operator]
            )
        if not self.loss_ok:
            out.append(
                f"loss {self.stats.loss_ratio:.4f} > {self.spec.max_loss_ratio:.4f}"  # type: ignore[operator]
            )
        if not self.throughput_ok:
            out.append(
                f"throughput {self.stats.throughput_bps/1e3:.0f}kbps < "
                f"{self.spec.min_throughput_bps/1e3:.0f}kbps"  # type: ignore[operator]
            )
        return out


def _leq(value: float, bound: Optional[float]) -> bool:
    if bound is None:
        return True
    if math.isnan(value):
        return False  # nothing arrived: cannot be conformant on a bounded metric
    return value <= bound


def evaluate(spec: SlaSpec, stats: FlowStats) -> SlaVerdict:
    """Check ``stats`` against ``spec``."""
    thr_ok = (
        spec.min_throughput_bps is None
        or stats.throughput_bps >= spec.min_throughput_bps
    )
    return SlaVerdict(
        spec=spec,
        stats=stats,
        delay_ok=_leq(stats.p99_delay_s, spec.max_p99_delay_s),
        jitter_ok=_leq(stats.jitter_rfc3550_s, spec.max_jitter_s),
        loss_ok=_leq(stats.loss_ratio, spec.max_loss_ratio),
        throughput_ok=thr_ok,
    )


#: ITU G.114-style voice budget scaled to a metro/regional backbone: the
#: experiments use short propagation delays, so the budget reflects the
#: *queueing* headroom a correctly engineered EF class must hold.
VOICE_SLA = SlaSpec("voice", max_p99_delay_s=0.050, max_jitter_s=0.010, max_loss_ratio=0.001)

#: Assured data: delivery matters more than latency.
DATA_SLA = SlaSpec("data", max_p99_delay_s=0.250, max_loss_ratio=0.01)

#: Best effort commits to nothing — always conformant.
BEST_EFFORT_SLA = SlaSpec("best-effort")
