"""Active SLA measurement probes.

Providers do not see their customers' flow statistics — they *measure*
the service ("providers to more easily measure, monitor, and meet
different service level requirements across their backbones", §5) by
injecting synthetic probe packets, exactly like Cisco SAA / IP SLA agents
of the era.  :class:`ProbeAgent` sends small timestamped probes at a fixed
interval in a chosen DSCP class and computes the same statistics the
customer's real traffic would see; the tests check the estimate converges
to the ground truth measured on a parallel real flow.
"""

from __future__ import annotations

from repro.metrics.sla import SlaSpec, SlaVerdict, evaluate
from repro.metrics.stats import FlowStats, delay_percentile, summarize_flow
from repro.net.address import IPv4Address
from repro.net.node import Node
from repro.traffic.generators import CbrSource
from repro.traffic.sink import FlowSink

__all__ = ["ProbeAgent"]


class ProbeAgent:
    """Synthetic probe stream between two measurement points.

    Parameters
    ----------
    src_node / dst_node:
        The hosts (or CEs) acting as probe responder endpoints.
    dscp:
        Class under measurement — probe what you sell.
    interval_s:
        Probe spacing; 20 ms mimics a voice stream, 1 s a keepalive-grade
        monitor.
    payload_bytes:
        Probe size (small, like real SAA probes, so the probes themselves
        do not perturb the service).
    """

    def __init__(
        self,
        sim,
        src_node: Node,
        dst_node: Node,
        src_addr: IPv4Address | str,
        dst_addr: IPv4Address | str,
        dscp: int = 46,
        interval_s: float = 0.020,
        payload_bytes: int = 64,
    ) -> None:
        # Per-simulator ids: probe flow names must not depend on how many
        # probes earlier simulations in the same process created.
        self.flow = f"__probe{sim.next_id('probe')}"
        wire = payload_bytes + 20
        self.source = CbrSource(
            sim, src_node.send, self.flow, src_addr, dst_addr,
            payload_bytes=payload_bytes, dscp=dscp, proto="udp", dst_port=7,
            rate_bps=wire * 8 / interval_s,
        )
        self.sink = FlowSink(sim).attach(dst_node)
        self.interval_s = interval_s

    # ------------------------------------------------------------------
    def start(self, at: float = 0.0, stop_at: float | None = None) -> None:
        self.source.start(at, stop_at=stop_at)

    def stats(self, duration_s: float | None = None) -> FlowStats:
        """Probe-estimated service statistics."""
        return summarize_flow(self.source, self.sink, duration_s=duration_s)

    def check(self, spec: SlaSpec, duration_s: float | None = None) -> SlaVerdict:
        """Evaluate the monitored class against an SLA from probes alone."""
        return evaluate(spec, self.stats(duration_s))

    def loss_ratio(self) -> float:
        sent = self.source.sent
        return 1.0 - self.sink.received(self.flow) / sent if sent else 0.0

    def delay_percentile(self, q: float) -> float:
        """q-th percentile one-way probe delay in seconds.

        NaN when no probes arrived or ``q`` is outside [0, 100] — the
        NaN-consistency contract of
        :func:`repro.metrics.stats.delay_percentile`.
        """
        rec = self.sink.record(self.flow)
        return delay_percentile(rec.delays_array(), q)
