"""Per-flow statistics: delay distribution, jitter, loss, throughput.

Delay percentiles come straight from the raw sample arrays (NumPy);
jitter is reported two ways — RFC 3550's smoothed interarrival jitter
estimator (what a VoIP endpoint computes) and the delay standard
deviation (what queueing analysis predicts).  Loss is sent-vs-received
against the generator's count, so drops anywhere along the path are
charged to the flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.generators import TrafficSource
from repro.traffic.sink import FlowRecord, FlowSink

__all__ = [
    "FlowStats",
    "delay_percentile",
    "rfc3550_jitter",
    "summarize_flow",
    "summarize_hybrid_flow",
]


def delay_percentile(samples: np.ndarray | list[float], q: float) -> float:
    """``np.percentile`` with the package's NaN contract.

    Empty sample sets and out-of-range ``q`` return NaN instead of
    raising — an unanswerable question about a measurement is data (the
    SLA evaluator treats NaN as non-conformant on bounded metrics), not
    an exception.  A single sample is its own percentile at any valid
    ``q``, which NumPy already handles.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0 or not 0.0 <= q <= 100.0:
        return float("nan")
    return float(np.percentile(arr, q))


def rfc3550_jitter(send_times: np.ndarray, arrival_times: np.ndarray) -> float:
    """RFC 3550 §6.4.1 interarrival jitter (final smoothed value, seconds).

    J ← J + (|D(i-1, i)| − J)/16 where D is the difference of transit
    times of consecutive packets.
    """
    if len(send_times) < 2:
        return 0.0
    transit = arrival_times - send_times
    d = np.abs(np.diff(transit))
    j = 0.0
    for di in d:
        j += (di - j) / 16.0
    return float(j)


@dataclass(frozen=True, slots=True)
class FlowStats:
    """Summary of one flow over one run."""

    flow: str
    sent: int
    received: int
    mean_delay_s: float
    p50_delay_s: float
    p95_delay_s: float
    p99_delay_s: float
    max_delay_s: float
    jitter_rfc3550_s: float
    delay_std_s: float
    loss_ratio: float
    throughput_bps: float
    duration_s: float

    @property
    def delivered_ratio(self) -> float:
        return 1.0 - self.loss_ratio

    def row(self) -> dict[str, float | str | int]:
        """Flat dict for table rendering."""
        return {
            "flow": self.flow,
            "sent": self.sent,
            "recv": self.received,
            "loss%": round(100 * self.loss_ratio, 3),
            "mean_ms": round(1e3 * self.mean_delay_s, 3),
            "p95_ms": round(1e3 * self.p95_delay_s, 3),
            "p99_ms": round(1e3 * self.p99_delay_s, 3),
            "jitter_ms": round(1e3 * self.jitter_rfc3550_s, 3),
            "thru_kbps": round(self.throughput_bps / 1e3, 1),
        }


def summarize_flow(
    source: TrafficSource,
    sink: FlowSink,
    duration_s: float | None = None,
) -> FlowStats:
    """Combine a generator's send counters with a sink's arrival log.

    ``duration_s`` bounds the throughput denominator; defaults to the span
    from first to last arrival (or 0 → throughput 0).
    """
    rec: FlowRecord = sink.record(source.flow)
    delays = rec.delays_array()
    arrivals = rec.arrivals_array()
    received = rec.count
    sent = source.sent
    loss = 1.0 - received / sent if sent else 0.0

    if duration_s is None:
        duration_s = float(arrivals[-1] - arrivals[0]) if received >= 2 else 0.0
    thru = rec.bytes_received * 8.0 / duration_s if duration_s > 0 else 0.0

    if received:
        send_times = arrivals - delays
        stats = FlowStats(
            flow=str(source.flow),
            sent=sent,
            received=received,
            mean_delay_s=float(delays.mean()),
            p50_delay_s=float(np.percentile(delays, 50)),
            p95_delay_s=float(np.percentile(delays, 95)),
            p99_delay_s=float(np.percentile(delays, 99)),
            max_delay_s=float(delays.max()),
            jitter_rfc3550_s=rfc3550_jitter(send_times, arrivals),
            delay_std_s=float(delays.std()),
            loss_ratio=max(0.0, loss),
            throughput_bps=thru,
            duration_s=duration_s,
        )
    else:
        stats = FlowStats(
            flow=str(source.flow),
            sent=sent,
            received=0,
            mean_delay_s=float("nan"),
            p50_delay_s=float("nan"),
            p95_delay_s=float("nan"),
            p99_delay_s=float("nan"),
            max_delay_s=float("nan"),
            jitter_rfc3550_s=float("nan"),
            delay_std_s=float("nan"),
            loss_ratio=1.0 if sent else 0.0,
            throughput_bps=0.0,
            duration_s=duration_s or 0.0,
        )
    return stats


def summarize_hybrid_flow(
    agg,
    sink: FlowSink,
    duration_s: float | None = None,
) -> FlowStats:
    """Merge a :class:`~repro.traffic.fluid.FluidAggregate`'s two regimes.

    Packets the aggregate spent *expanded* arrive at ``sink`` like any
    other flow's and contribute real delay samples.  Epochs it spent
    *fluid* delivered analytically at the path's deterministic delay —
    those are folded in as ``fluid_delivered_packets`` samples pinned at
    ``agg.analytic_delay_s``, which shifts the mean/percentiles exactly
    as that constant-delay population would.  Jitter is computed from the
    packet samples only (the fluid regime has zero jitter by
    construction; with no packet samples it reports 0.0) — one of the
    documented bit-inexactness points of hybrid mode (ARCHITECTURE §12).
    """
    rec: FlowRecord = sink.record(agg.flow)
    pkt_delays = rec.delays_array()
    arrivals = rec.arrivals_array()
    fluid_pkts = agg.fluid_delivered_packets
    received = rec.count + fluid_pkts
    sent = agg.sent
    loss = 1.0 - received / sent if sent else 0.0

    if duration_s is None:
        duration_s = float(arrivals[-1] - arrivals[0]) if rec.count >= 2 else 0.0
    total_bytes = rec.bytes_received + agg.fluid_delivered_bytes
    thru = total_bytes * 8.0 / duration_s if duration_s > 0 else 0.0

    if received == 0:
        return FlowStats(
            flow=str(agg.flow),
            sent=sent,
            received=0,
            mean_delay_s=float("nan"),
            p50_delay_s=float("nan"),
            p95_delay_s=float("nan"),
            p99_delay_s=float("nan"),
            max_delay_s=float("nan"),
            jitter_rfc3550_s=float("nan"),
            delay_std_s=float("nan"),
            loss_ratio=1.0 if sent else 0.0,
            throughput_bps=0.0,
            duration_s=duration_s or 0.0,
        )

    if fluid_pkts:
        delays = np.concatenate(
            [pkt_delays, np.full(fluid_pkts, agg.analytic_delay_s)]
        )
    else:
        delays = pkt_delays
    if rec.count >= 2:
        jitter = rfc3550_jitter(arrivals - pkt_delays, arrivals)
    else:
        jitter = 0.0
    return FlowStats(
        flow=str(agg.flow),
        sent=sent,
        received=received,
        mean_delay_s=float(delays.mean()),
        p50_delay_s=float(np.percentile(delays, 50)),
        p95_delay_s=float(np.percentile(delays, 95)),
        p99_delay_s=float(np.percentile(delays, 99)),
        max_delay_s=float(delays.max()),
        jitter_rfc3550_s=jitter,
        delay_std_s=float(delays.std()),
        loss_ratio=max(0.0, loss),
        throughput_bps=thru,
        duration_s=duration_s,
    )
