"""Plain-text result tables.

The benchmark harness "prints the same rows/series the paper reports";
these helpers render aligned monospace tables from lists of dicts so every
experiment's output is uniform and diffable.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "print_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` (dicts) as an aligned text table.

    Column order: explicit ``columns`` if given, else first-row key order
    (extra keys in later rows are appended).
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    """Render and print (the benchmarks' standard reporting call)."""
    print()
    print(render_table(rows, columns, title))
