"""Measurement: flow statistics, SLA conformance, result tables."""

from repro.metrics.sla import (
    BEST_EFFORT_SLA,
    DATA_SLA,
    VOICE_SLA,
    SlaSpec,
    SlaVerdict,
    evaluate,
)
from repro.metrics.probes import ProbeAgent
from repro.metrics.stats import (
    FlowStats,
    rfc3550_jitter,
    summarize_flow,
    summarize_hybrid_flow,
)
from repro.metrics.timeseries import TimeSeries, attach_flow_series, attach_link_series
from repro.metrics.table import print_table, render_table

__all__ = [
    "BEST_EFFORT_SLA", "DATA_SLA", "VOICE_SLA", "SlaSpec", "SlaVerdict",
    "evaluate", "FlowStats", "rfc3550_jitter", "summarize_flow",
    "summarize_hybrid_flow",
    "print_table", "render_table",
    "ProbeAgent", "TimeSeries", "attach_flow_series", "attach_link_series",
]
