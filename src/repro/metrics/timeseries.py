"""Time-binned measurement series.

The paper's figures are diagrams, but a production reproduction needs
*figure-shaped* output too: per-link utilization over time, per-class
throughput over time, recovery transients.  :class:`TimeSeries` is a
fixed-bin accumulator (NumPy array underneath) and
:func:`attach_link_series` taps an interface's transmissions into one —
enabling the E11-style "goodput vs time across a failure" figure.
"""

from __future__ import annotations

import numpy as np

from repro.net.link import Interface
from repro.net.packet import Packet

__all__ = ["TimeSeries", "attach_link_series", "attach_flow_series"]


class TimeSeries:
    """Fixed-width-bin accumulator over a [0, horizon) window.

    Values landing past the horizon extend the array (amortized growth),
    so a slightly-longer-than-planned run never crashes measurement.
    """

    def __init__(self, bin_s: float, horizon_s: float = 10.0) -> None:
        if bin_s <= 0 or horizon_s <= 0:
            raise ValueError("bin and horizon must be positive")
        self.bin_s = float(bin_s)
        self._bins = np.zeros(int(np.ceil(horizon_s / bin_s)) + 1)

    def add(self, t: float, value: float) -> None:
        """Accumulate ``value`` into the bin containing time ``t``."""
        if t < 0:
            raise ValueError("negative time")
        idx = int(t / self.bin_s)
        if idx >= len(self._bins):
            grown = np.zeros(idx + 16)
            grown[: len(self._bins)] = self._bins
            self._bins = grown
        self._bins[idx] += value

    # ------------------------------------------------------------------
    def totals(self) -> np.ndarray:
        """Raw per-bin sums."""
        return self._bins.copy()

    def rate(self) -> np.ndarray:
        """Per-bin sums divided by bin width (value/second series)."""
        return self._bins / self.bin_s

    def times(self) -> np.ndarray:
        """Left edge of each bin."""
        return np.arange(len(self._bins)) * self.bin_s

    def nonzero_span(self) -> tuple[float, float]:
        """(first, last) bin-start times carrying any value (0,0 if none)."""
        idx = np.nonzero(self._bins)[0]
        if len(idx) == 0:
            return (0.0, 0.0)
        return (float(idx[0] * self.bin_s), float(idx[-1] * self.bin_s))

    def __len__(self) -> int:
        return len(self._bins)


def attach_link_series(
    iface: Interface, bin_s: float = 0.1, horizon_s: float = 10.0
) -> TimeSeries:
    """Record an interface's transmitted bits into a new series.

    Implemented as an egress conditioner that never modifies the packet —
    it sees the packet at enqueue time, which for utilization purposes is
    equivalent at our bin widths.
    """
    series = TimeSeries(bin_s, horizon_s)

    def _tap(pkt: Packet, now: float):
        series.add(now, pkt.wire_bytes * 8)
        return pkt

    iface.add_conditioner(_tap)
    return series


def attach_flow_series(
    sink, flow, bin_s: float = 0.1, horizon_s: float = 10.0
):
    """Per-flow delivered-bits series from a :class:`FlowSink`'s arrivals.

    Returns the series; call after creating the sink but before traffic.
    """
    from repro.traffic.sink import FlowSink  # local import, avoid cycle

    assert isinstance(sink, FlowSink)
    series = TimeSeries(bin_s, horizon_s)
    original = sink.on_delivery

    def tapped(pkt: Packet) -> None:
        original(pkt)
        inner = pkt.innermost()
        if inner.flow == flow:
            series.add(sink.sim.now, inner.wire_bytes * 8)

    # Replace the bound method used by future attaches; nodes already
    # holding the old callback keep working because we wrap, not rebind.
    sink.on_delivery = tapped  # type: ignore[method-assign]
    return series
