"""Grid builders: the E1 / E2 / E5 sweeps as task lists.

A grid is just a list of task dicts for :func:`repro.sweep.run_sweep`.
Task names encode the full coordinate (``e2/mpls-diffserv/r1``) and the
per-task seed is derived from that name, so the same grid built anywhere
yields byte-identical tasks.
"""

from __future__ import annotations

from typing import Sequence

from repro.sweep.runner import Task, task_seed

__all__ = ["GRIDS", "build_grid", "smoke_grid"]


def _task(index: int, scenario: str, name: str, params: dict) -> Task:
    return {
        "index": index,
        "name": name,
        "scenario": scenario,
        "params": params,
        "seed": task_seed(name),
    }


def e1_grid(
    sites: Sequence[int] = (10, 50, 100, 200), reps: int = 1, **_: object
) -> list[Task]:
    """Overlay vs MPLS provisioning census over site counts × seeds."""
    tasks = []
    for kind in ("overlay", "mpls"):
        for n in sites:
            for r in range(reps):
                name = f"e1/{kind}/n{n}/r{r}"
                tasks.append(
                    _task(len(tasks), "e1", name, {"kind": kind, "sites": int(n)})
                )
    return tasks


def e2_grid(
    reps: int = 1, measure_s: float = 2.0, **_: object
) -> list[Task]:
    """Per-class QoS comparison: every config × seeds."""
    from repro.experiments.e2_qos import CONFIGS

    tasks = []
    for config in CONFIGS:
        for r in range(reps):
            name = f"e2/{config}/r{r}"
            tasks.append(
                _task(len(tasks), "e2", name,
                      {"config": config, "measure_s": measure_s})
            )
    return tasks


def e5_grid(
    reps: int = 1, measure_s: float = 2.0, slo: bool = False, **_: object
) -> list[Task]:
    """SLA ablation chain: every stage × seeds.

    ``slo=True`` runs each stage with the live streaming SLO engine
    attached: flow rows gain ``slo``/``slo_p99_ms``/``slo_viol_s``
    columns and each task adds one ``(slo-summary)`` row.
    """
    from repro.experiments.e5_sla import STAGES

    tasks = []
    for stage in STAGES:
        for r in range(reps):
            name = f"e5/{stage}/r{r}"
            params = {"stage": stage, "measure_s": measure_s}
            if slo:
                params["slo"] = True
            tasks.append(_task(len(tasks), "e5", name, params))
    return tasks


def e15_grid(
    sites: Sequence[int] = (10, 50, 100, 200), reps: int = 1, **_: object
) -> list[Task]:
    """Churn storms over site counts × seeds (message/state columns are
    deterministic; per-storm wall latency rides in task timing)."""
    tasks = []
    for n in sites:
        for r in range(reps):
            name = f"e15/storms/n{n}/r{r}"
            tasks.append(
                _task(len(tasks), "e15", name,
                      {"sites": int(n), "site_flaps": 4,
                       "wave_sites": 4, "link_flaps": 1})
            )
    return tasks


GRIDS = {"e1": e1_grid, "e2": e2_grid, "e5": e5_grid, "e15": e15_grid}


def build_grid(
    grid: str,
    reps: int = 1,
    measure_s: float = 2.0,
    sites: Sequence[int] = (10, 50, 100, 200),
    slo: bool = False,
) -> list[Task]:
    """Build one named grid, or the concatenation for ``"all"``."""
    names = list(GRIDS) if grid == "all" else [grid]
    tasks: list[Task] = []
    for name in names:
        for t in GRIDS[name](reps=reps, measure_s=measure_s, sites=sites, slo=slo):
            tasks.append(dict(t, index=len(tasks)))
    return tasks


def smoke_grid() -> list[Task]:
    """A seconds-scale grid for CI: one task per scenario family."""
    tasks = [
        _task(0, "e1", "smoke/e1/mpls/n10/r0", {"kind": "mpls", "sites": 10}),
        _task(1, "e2", "smoke/e2/mpls-diffserv/r0",
              {"config": "mpls-diffserv", "measure_s": 0.5}),
        _task(2, "e5", "smoke/e5/full/r0",
              {"stage": "full", "measure_s": 0.5}),
        _task(3, "e5", "smoke/e5/full-slo/r0",
              {"stage": "full", "measure_s": 0.5, "slo": True}),
        _task(4, "e15", "smoke/e15/storms/n10/r0",
              {"sites": 10, "site_flaps": 2, "wave_sites": 2,
               "link_flaps": 1}),
    ]
    return tasks
