"""Parallel experiment sweeps: grids of seeded runs across processes.

See :mod:`repro.sweep.runner` for the execution model and
:mod:`repro.sweep.grids` for the shipped E1/E2/E5 grids.  CLI entry:
``python -m repro sweep --grid e2 --workers 4``.
"""

from repro.sweep.grids import GRIDS, build_grid, smoke_grid
from repro.sweep.runner import (
    SCHEMA_ID,
    Task,
    deterministic_view,
    run_sweep,
    task_seed,
)

__all__ = [
    "GRIDS",
    "build_grid",
    "smoke_grid",
    "SCHEMA_ID",
    "Task",
    "deterministic_view",
    "run_sweep",
    "task_seed",
]
