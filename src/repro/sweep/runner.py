"""Parallel experiment sweep runner.

A *sweep* is a grid of independent experiment runs — scenario × parameter
× seed — fanned out across worker processes and merged into one report.
The single-process experiment harnesses (``repro.experiments.*``) stay
untouched; each sweep task calls one of their seeded entry points with an
explicit seed, so a task's result depends only on its task description,
never on which worker ran it or in what order.

Design rules that make the merged report reproducible:

* **Seeds are derived, not drawn.**  Each task's seed is
  ``crc32(task name)`` — a pure function of the grid, identical in every
  process.  Python's ``hash()`` is salted per process and must never be
  used for this.
* **Results are merged by task index**, so the report is byte-identical
  whether it was produced by 1 worker or 8.
* **Timing is quarantined.**  Wall-clock numbers (including the
  ``wall_s`` fields inside the E1 census dicts) live under ``timing`` /
  per-task ``wall_s``; the ``rows`` section holds only deterministic
  values and is what the determinism test compares.
* **Failures are data.**  A task that raises is reported (name, index,
  traceback) without sinking the sweep; the report's ``failed`` list and
  a non-zero CLI exit code carry the news.
* **Rows never transit the parent heap.**  Multi-worker sweeps spill each
  task's result as one JSON line to a per-worker file; ``pool.map`` moves
  only task indices, and the parent merges the spill files by index after
  the pool drains — a multi-million-row grid costs the parent one result
  at a time, not the whole pickled grid at once.  The inline (1-worker)
  path round-trips results through JSON too, so reports stay
  byte-identical at any worker count.  A missing or truncated spill line
  (a worker crashed mid-write) is synthesized into a failure row rather
  than sinking the merge.

Workers run with the per-packet ``ClassStats``/drop-hook counters
switched off (:func:`repro.obs.runtime.set_packet_counters`) — the sweep
fast path — unless telemetry manifests were requested, in which case the
counters stay on so the scraped metrics are meaningful.

**Warm start** (``warm_start=True`` / ``repro sweep --warm-start``): the
parent builds and converges each *distinct base* in the grid exactly once
— base = everything a task's result does not vary with: topology, VRF
provisioning, LDP/BGP convergence — then hands it to tasks through one of
two copy-on-write tiers, both inherited by forked workers through COW
memory so an 8-worker sweep pays for each base once, not 8×:

* **Live tier** (read-only scenarios, e.g. the e1 state census): the
  built object graph itself is shared; every task borrows it at zero
  per-task cost.  Correct exactly because the scenario never mutates its
  ``prebuilt`` — the cold-vs-warm equality tests enforce that contract.
* **Blob tier** (scenarios that run traffic and therefore mutate queues,
  counters, and RNG streams — e2/e5): the base is snapshotted via
  :mod:`repro.sim.snapshot` and each task deserializes a private fresh
  graph (one ``pickle.loads``), then applies its per-task deltas — RNG
  streams are reseeded to the task seed *before the first draw*, which
  makes warm rows byte-identical to cold rows.

``deterministic_view`` equality between a cold and a warm sweep is a
tested invariant, and the inline 1-worker path restores through exactly
the same code as the pool workers.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import time
import traceback
import zlib
from typing import Any, Callable, Sequence

__all__ = ["Task", "task_seed", "base_key", "run_sweep", "SCHEMA_ID"]

SCHEMA_ID = "repro.sweep/1"

# A task is a plain picklable dict:
#   {"index": int, "name": str, "scenario": str, "params": {...}, "seed": int}
Task = dict


def task_seed(name: str) -> int:
    """Deterministic per-task seed: a pure function of the task name.

    ``zlib.crc32`` rather than ``hash()`` — the latter is salted per
    process, which would give every worker a different grid.
    """
    return zlib.crc32(name.encode("utf-8")) & 0x7FFFFFFF


# ----------------------------------------------------------------------
# Scenario adapters: map a task's params onto one seeded experiment entry
# point and flatten the result into JSON-able rows.  Each returns
# ``(rows, timing)`` — deterministic vs wall-clock — and must stay a
# module-level function so tasks pickle across process boundaries.


def _scenario_e1(params: dict, seed: int, prebuilt: Any = None) -> tuple[list[dict], dict]:
    from repro.experiments.e1_scalability import mpls_census, overlay_census

    fn = overlay_census if params["kind"] == "overlay" else mpls_census
    census = dict(fn(params["sites"], seed=seed, prebuilt=prebuilt))
    # The census times its own provisioning; that is measurement, not
    # result — keep it out of the deterministic rows.
    timing = {"wall_s": census.pop("wall_s", None)}
    return [{"kind": params["kind"], "seed": seed, **census}], timing


def _scenario_e2(params: dict, seed: int, prebuilt: Any = None) -> tuple[list[dict], dict]:
    from repro.experiments.e2_qos import run_config

    result = run_config(
        params["config"], seed=seed, measure_s=params.get("measure_s", 2.0),
        prebuilt=prebuilt,
    )
    rows = [
        {"config": params["config"], "seed": seed, **result[flow].row()}
        for flow in ("voice", "data", "bulk")
    ]
    return rows, {}


def _scenario_e5(params: dict, seed: int, prebuilt: Any = None) -> tuple[list[dict], dict]:
    from repro.experiments.e5_sla import run_stage

    slo = bool(params.get("slo", False))
    result = run_stage(
        params["stage"], seed=seed, measure_s=params.get("measure_s", 2.0),
        streaming=slo, prebuilt=prebuilt,
    )
    rows = []
    for flow, sla in (("voice", "voice_sla"), ("data", "data_sla"), ("bulk", None)):
        row = {"stage": params["stage"], "seed": seed, **result[flow].row()}
        row["sla"] = (
            "n/a" if sla is None
            else ("PASS" if result[sla].conformant else "FAIL")
        )
        if slo:
            # Streaming SLO columns next to the batch-oracle ones: the
            # live verdict must agree with "sla" on every bound flow.
            if flow in ("voice", "data"):
                verdict = result["slo"][flow]
                stream = result["slo"]["engine"].flows[flow]
                row["slo"] = "PASS" if verdict.conformant else "FAIL"
                row["slo_p99_ms"] = round(1e3 * stream.quantile(99), 3)
                row["slo_viol_s"] = round(stream.violation_seconds, 3)
            else:
                row["slo"] = "n/a"
        rows.append(row)
    if slo:
        # One per-task summary row: live-engine conformance totals.
        engine = result["slo"]["engine"]
        summary = engine.summary()
        rows.append(
            {
                "stage": params["stage"],
                "seed": seed,
                "flow": "(slo-summary)",
                "delivered": summary["delivered"],
                "streams": summary["flows"] + summary["class_streams"],
                "windows_closed": sum(
                    s["windows_closed"] for s in summary["streams"].values()
                ),
                "windows_violated": sum(
                    s["windows_violated"] for s in summary["streams"].values()
                ),
                "sla": "n/a",
            }
        )
    return rows, {}


def _scenario_e15(params: dict, seed: int, prebuilt: Any = None) -> tuple[list[dict], dict]:
    from repro.experiments.e1_scalability import mpls_base
    from repro.experiments.e15_churn import churn_storms

    ctx = prebuilt if prebuilt is not None else mpls_base(params["sites"], seed=seed)
    storm_rows = churn_storms(
        ctx,
        site_flaps=params.get("site_flaps", 4),
        wave_sites=params.get("wave_sites", 4),
        link_flaps=params.get("link_flaps", 1),
    )
    # Wall clock is measurement, not result: keep the deterministic
    # message/state columns in the rows (cold == warm must hold
    # byte-identically) and move the latencies to the timing side.
    timing = {
        "storm_wall_ms": {r["storm"]: r.pop("wall_ms") for r in storm_rows}
    }
    rows = [
        {"sites": params["sites"], "seed": seed, **r} for r in storm_rows
    ]
    return rows, timing


SCENARIOS: dict[str, Callable[..., tuple[list[dict], dict]]] = {
    "e1": _scenario_e1,
    "e2": _scenario_e2,
    "e5": _scenario_e5,
    "e15": _scenario_e15,
}


# ----------------------------------------------------------------------
# Warm-start bases: one converged snapshot per distinct (scenario, build
# params) in the grid, built in the parent, restored per task.


def base_key(task: Task) -> str | None:
    """Name of the converged base ``task`` can warm-start from.

    Two tasks share a base exactly when their results are built on the
    same topology + provisioning + convergence; only *run-time* deltas
    (seed, measure window, slo flag) may differ.  ``None`` means the
    scenario has no warm-start support and the task runs cold.
    """
    params = task["params"]
    scenario = task["scenario"]
    if scenario == "e1":
        return f"e1/{params['kind']}/{params['sites']}"
    if scenario == "e2":
        return f"e2/{params['config']}"
    if scenario == "e5":
        return f"e5/{params['stage']}"
    if scenario == "e15":
        # Churn tasks *mutate* their base, so they get the snapshot-restore
        # tier (a fresh graph per task), never the shared live tier — the
        # key is distinct from e1's on purpose.
        return f"e15/{params['sites']}"
    return None


def _build_base_ctx(key: str) -> tuple[Any, dict]:
    """Build + converge the named base; returns ``(net, extras)`` live."""
    scenario, rest = key.split("/", 1)
    if scenario == "e1":
        from repro.experiments.e1_scalability import mpls_base, overlay_base

        kind, sites = rest.split("/")
        ctx = (overlay_base if kind == "overlay" else mpls_base)(int(sites))
        return ctx.pop("net"), ctx
    if scenario == "e2":
        from repro.experiments.e2_qos import _build

        net, src_host, dst_host = _build(rest, seed=0)
        return net, {"src": src_host.name, "dst": dst_host.name}
    if scenario == "e5":
        from repro.experiments.e5_sla import _build

        ctx = _build(rest, seed=0)
        return ctx.pop("net"), ctx
    if scenario == "e15":
        from repro.experiments.e1_scalability import mpls_base

        ctx = mpls_base(int(rest))
        return ctx.pop("net"), ctx
    raise ValueError(f"no base builder for {key!r}")


def _build_base(key: str) -> bytes:
    """Build + converge + snapshot the named base (parent process only)."""
    from repro.sim.snapshot import snapshot_network

    net, extras = _build_base_ctx(key)
    return snapshot_network(net, extras)


# Scenarios whose task body never mutates its ``prebuilt`` (the e1 census
# only *counts* state): every task can share one live base object graph,
# inherited by forked workers through copy-on-write pages at zero
# per-task cost.  Scenarios that run traffic (e2/e5) mutate queues,
# counters, and RNG streams, so each of their tasks deserializes a fresh
# graph from the snapshot blob instead.  The cold-vs-warm report-equality
# tests hold this read-only contract honest at every worker count.
_READONLY_SCENARIOS = frozenset({"e1"})

# key -> snapshot blob (mutable-base tier).  Filled by _prepare_bases in
# the parent before the pool forks; children inherit it through
# copy-on-write memory, so each base is serialized once per sweep, not
# once per worker or per task.
_BASES: dict[str, bytes] = {}

# key -> prebuilt-shaped live ctx (read-only tier, same fork inheritance).
_LIVE: dict[str, Any] = {}


def _prepare_bases(tasks: Sequence[Task]) -> dict:
    """Build every distinct base the grid needs; returns timing/size info.

    Bases are built with telemetry detached (snapshots exclude sessions —
    see :mod:`repro.sim.snapshot`); if the process-wide telemetry switch
    is on it is suspended for the builds and re-armed after, and each
    task's restore re-attaches per current switch state, exactly like a
    cold build would.
    """
    from repro.obs import runtime

    keys: list[str] = []
    for task in tasks:
        key = base_key(task)
        if key is not None and key not in keys:
            keys.append(key)
    was_enabled = runtime.is_enabled()
    if was_enabled:
        saved_options = dict(runtime._options)
        runtime.disable()
    # Manifest sweeps want a telemetry session attached per task; only a
    # blob restore re-attaches one, so the live tier stands down then.
    collect_telemetry = any(t.get("telemetry") for t in tasks)
    info: dict[str, Any] = {"bases": {}, "live": [], "build_s": 0.0, "bytes": 0}
    t0 = time.perf_counter()
    try:
        for key in keys:
            if (key.split("/", 1)[0] in _READONLY_SCENARIOS
                    and not collect_telemetry):
                # Read-only tier: keep the built graph itself; no
                # serialization round-trip, tasks borrow it as-is.
                net, extras = _build_base_ctx(key)
                _LIVE[key] = {"net": net, **extras}
                info["bases"][key] = 0
                info["live"].append(key)
            else:
                blob = _build_base(key)
                _BASES[key] = blob
                info["bases"][key] = len(blob)
                info["bytes"] += len(blob)
    finally:
        if was_enabled:
            runtime.enable(**saved_options)
    info["build_s"] = time.perf_counter() - t0
    return info


def _restore_base(task: Task) -> Any:
    """Restore the task's base into the scenario's ``prebuilt`` shape.

    Returns ``None`` when no base exists (scenario unsupported, or
    warm-start off) — the task then runs the cold build path.  Each call
    deserializes a fresh object graph, so tasks never share mutable state
    even on the inline path.
    """
    key = base_key(task)
    if key is None:
        return None
    live = _LIVE.get(key)
    if live is not None:
        # Read-only tier: every task (inline or forked) borrows the same
        # graph — the scenario promises not to mutate it.
        return live
    blob = _BASES.get(key)
    if blob is None:
        return None
    from repro.sim.snapshot import restore_network

    net, extras = restore_network(blob)
    scenario = task["scenario"]
    if scenario == "e2":
        return net, net.nodes[extras["src"]], net.nodes[extras["dst"]]
    # e1/e5 take the ctx-dict shape their base builders produced.
    return {"net": net, **extras}


# ----------------------------------------------------------------------
# Worker side.


# Per-worker spill file (set by _worker_init in pool children, None in
# the parent/inline path): results are appended here as JSON lines and
# only the task index rides back through the pool.
_SPILL_PATH: str | None = None


def _worker_init(collect_telemetry: bool, spill_dir: str | None = None) -> None:
    """Pool initializer: arm the sweep fast path in this worker."""
    global _SPILL_PATH
    from repro.obs import runtime

    if not collect_telemetry:
        runtime.set_packet_counters(False)
    if spill_dir is not None:
        _SPILL_PATH = os.path.join(spill_dir, f"worker-{os.getpid()}.jsonl")


def _run_task(task: Task) -> dict:
    """Execute one task; never raises — failures come back as data."""
    t0 = time.perf_counter()
    out: dict[str, Any] = {
        "index": task["index"],
        "name": task["name"],
        "ok": True,
        "rows": [],
        "timing": {},
    }
    manifests: list[dict] = []
    telemetry = task.get("telemetry", False)
    if telemetry:
        from repro.obs import runtime

        runtime.reset()
        runtime.enable(profile=False)
    try:
        scenario = SCENARIOS[task["scenario"]]
        # Warm start: restore the converged base (one pickle.loads from
        # the COW-inherited blob table) instead of rebuilding.  Inline and
        # pool workers pass through this same line — the restore code is
        # exercised identically at any worker count.
        prebuilt = _restore_base(task) if task.get("warm_start") else None
        out["warm"] = prebuilt is not None
        rows, timing = scenario(task["params"], task["seed"], prebuilt)
        out["rows"] = rows
        out["timing"] = timing
        if telemetry:
            from repro.obs import runtime

            for session in runtime.sessions():
                manifests.append(session.manifest(config={"task": task["name"]}))
    except Exception:
        out["ok"] = False
        out["error"] = traceback.format_exc()
    finally:
        if telemetry:
            from repro.obs import runtime

            runtime.reset()
    out["wall_s"] = time.perf_counter() - t0
    out["manifests"] = manifests
    out["pid"] = os.getpid()
    if _SPILL_PATH is not None:
        # One line per task, written whole and flushed on close: a worker
        # dying mid-task loses at most its current (truncated) line, which
        # the merge synthesizes into a failure row.
        with open(_SPILL_PATH, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(out, separators=(",", ":")) + "\n")
        return {"index": out["index"]}
    return out


def _merge_spills(spill_dir: str, tasks: Sequence[Task]) -> list[dict]:
    """Merge per-worker JSONL spill files into index-keyed results.

    A task whose line is missing or truncated — the worker crashed before
    (or while) spilling — comes back as a synthesized failure result, so
    a dying worker costs its task, never the sweep.
    """
    by_index: dict[int, dict] = {}
    for entry in sorted(os.listdir(spill_dir)):
        if not entry.endswith(".jsonl"):
            continue
        with open(os.path.join(spill_dir, entry), encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    continue  # torn final line: treat as missing
                try:
                    res = json.loads(line)
                except ValueError:
                    continue
                by_index[res["index"]] = res
    results: list[dict] = []
    for task in tasks:
        res = by_index.get(task["index"])
        if res is None:
            res = {
                "index": task["index"],
                "name": task["name"],
                "ok": False,
                "error": (
                    f"worker crashed before spilling a result for task "
                    f"{task['name']!r}"
                ),
                "rows": [],
                "timing": {},
                "wall_s": 0.0,
                "manifests": [],
                "pid": None,
            }
        results.append(res)
    return results


# ----------------------------------------------------------------------
# Driver side.


def run_sweep(
    tasks: Sequence[Task],
    workers: int = 1,
    telemetry: bool = False,
    spill_dir: str | None = None,
    warm_start: bool = False,
) -> dict:
    """Fan ``tasks`` across ``workers`` processes; merge one report.

    ``workers=1`` runs inline (no pool) — useful under coverage, in
    restricted environments, and as the determinism baseline the
    multi-worker path is tested against.  Multi-worker runs aggregate
    through per-worker spill files (module docstring); ``spill_dir``
    chooses where they live and keeps them after the merge — ``None``
    uses a temporary directory that is removed once merged.

    ``warm_start=True`` builds + converges each distinct base once in the
    parent and snapshots it; tasks restore from the copy-on-write image
    instead of re-provisioning (module docstring).  Rows are byte-
    identical either way; only ``timing`` changes.
    """
    tasks = [dict(t, telemetry=telemetry, warm_start=warm_start) for t in tasks]
    t0 = time.perf_counter()
    warm_info = _prepare_bases(tasks) if warm_start else None
    if workers <= 1 or len(tasks) <= 1:
        from repro.obs import runtime

        if not telemetry:
            runtime.set_packet_counters(False)
        try:
            # The JSON round-trip pins the inline results to exactly the
            # types a spill-file merge produces (tuples become lists, ...),
            # keeping reports byte-identical at any worker count.
            results = [json.loads(json.dumps(_run_task(t))) for t in tasks]
        finally:
            runtime.set_packet_counters(True)
    else:
        # fork keeps the already-imported package (no PYTHONPATH replay
        # in children) and is the default start method on Linux anyway.
        own_spill = spill_dir is None
        sdir = tempfile.mkdtemp(prefix="repro-sweep-") if own_spill else spill_dir
        os.makedirs(sdir, exist_ok=True)
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(telemetry, sdir),
            ) as pool:
                pool.map(_run_task, tasks, chunksize=1)
            results = _merge_spills(sdir, tasks)
        finally:
            if own_spill:
                shutil.rmtree(sdir, ignore_errors=True)
    if warm_start:
        # The base tables exist for this sweep only; forked workers took
        # their COW references with them, the parent drops its copy.
        _BASES.clear()
        _LIVE.clear()
    wall = time.perf_counter() - t0

    # pool.map preserves order, but the report's contract is "sorted by
    # task index", independent of how the work was scheduled.
    results.sort(key=lambda r: r["index"])

    rows: list[dict] = []
    failed: list[dict] = []
    manifests: list[dict] = []
    per_task_timing: list[dict] = []
    for res in results:
        if res["ok"]:
            rows.extend(res["rows"])
        else:
            failed.append(
                {"index": res["index"], "name": res["name"], "error": res["error"]}
            )
        manifests.extend(res["manifests"])
        per_task_timing.append(
            {
                "index": res["index"],
                "name": res["name"],
                "wall_s": res["wall_s"],
                "pid": res["pid"],
                "warm": res.get("warm", False),
                **{k: v for k, v in res["timing"].items() if v is not None},
            }
        )

    report: dict[str, Any] = {
        "schema": SCHEMA_ID,
        "workers": workers,
        "tasks": len(tasks),
        "ok": len(tasks) - len(failed),
        "failed": failed,
        "rows": rows,
        "timing": {"wall_s": wall, "per_task": per_task_timing},
    }
    if warm_info is not None:
        report["timing"]["warm_start"] = warm_info
    if telemetry:
        report["manifests"] = manifests
    return report


def deterministic_view(report: dict) -> dict:
    """The worker-count-invariant slice of a sweep report.

    Strips everything measured rather than computed (wall clocks, pids,
    worker count, telemetry manifests).  Two sweeps over the same grid —
    any number of workers — must agree on this view exactly.
    """
    return {
        "schema": report["schema"],
        "tasks": report["tasks"],
        "ok": report["ok"],
        "failed": [
            {"index": f["index"], "name": f["name"]} for f in report["failed"]
        ],
        "rows": report["rows"],
    }
