"""Hybrid fluid/packet plane benchmarks.

Headline numbers land in ``BENCH_hybrid.json`` at the repo root (CI
uploads it as a workflow artifact and ``tools/bench_trend.py`` gates the
trend):

* ``e2_100k_flows`` — the acceptance case: the EH scale scenario at
  100 000 flows, pure-packet vs hybrid wall clock end-to-end (build +
  run), asserting the ≥10× speedup floor.  Statistical parity between
  the two modes at this scale is held by
  ``tests/test_hybrid_parity.py::test_scale_parity_small``; here we only
  check the clock and the delivery totals.
* ``million_flow_smoke`` — 1 000 000 flows across 20 aggregates, hybrid
  only.  Pure-packet mode cannot finish this point in CI time (≈50× the
  100k pure run, tens of minutes), which is the feature: the smoke
  records that the hybrid plane completes it in seconds, with the
  offered-load integral intact.

Timings use ``time.perf_counter`` directly, so the file runs unchanged
under ``--benchmark-disable``.  ``BENCH_PERF_NONBLOCKING=1`` downgrades
floor misses to xfail (same contract as the other benchmark files).
"""

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.experiments.hybrid import FLOW_RATE_BPS, run_scale

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_hybrid.json"

#: ISSUE 8 acceptance: hybrid must beat pure-packet end-to-end by ≥10×
#: at the 100k-flow point.  Measured headroom is far larger (the hybrid
#: run is sub-second while pure is minutes-scale), so the floor is
#: deliberately conservative against slow CI boxes.
MIN_HYBRID_SPEEDUP = 10.0
N_FLOWS_ACCEPTANCE = 100_000
N_FLOWS_SMOKE = 1_000_000

_SOFT_FLOORS = os.environ.get("BENCH_PERF_NONBLOCKING") == "1"


def _require_floor(speedup: float, floor: float, msg: str) -> None:
    if speedup >= floor:
        return
    if _SOFT_FLOORS:
        pytest.xfail(msg)
    pytest.fail(msg)


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_hybrid.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_hybrid_speedup_100k_flows():
    """The acceptance case: 100k flows, pure vs hybrid, ≥10× end-to-end."""
    hyb = run_scale(mode="hybrid", n_flows=N_FLOWS_ACCEPTANCE, measure_s=0.4)
    pure = run_scale(mode="pure", n_flows=N_FLOWS_ACCEPTANCE, measure_s=0.4)
    speedup = pure["wall_s"] / hyb["wall_s"]
    _record("e2_100k_flows", {
        "n_flows": N_FLOWS_ACCEPTANCE,
        "offered_bps": N_FLOWS_ACCEPTANCE * FLOW_RATE_BPS,
        "pure_wall_s": pure["wall_s"],
        "hybrid_wall_s": hyb["wall_s"],
        "speedup": speedup,
        "min_required": MIN_HYBRID_SPEEDUP,
        "pure_delivered_pkts": pure["delivered_pkts"],
        "hybrid_delivered_pkts": hyb["delivered_pkts"],
    })
    # Both modes must actually deliver the offered load — a speedup that
    # drops traffic on the floor is not a speedup.
    assert pure["delivered_pkts"] == pure["offered_pkts"]
    assert hyb["delivered_pkts"] == hyb["offered_pkts"]
    assert hyb["delivered_pkts"] == pytest.approx(
        pure["delivered_pkts"], rel=0.01
    )
    _require_floor(speedup, MIN_HYBRID_SPEEDUP, (
        f"hybrid speedup {speedup:.1f}x < {MIN_HYBRID_SPEEDUP}x at "
        f"{N_FLOWS_ACCEPTANCE} flows (pure {pure['wall_s']:.2f} s vs "
        f"hybrid {hyb['wall_s']:.2f} s)"
    ))


def test_million_flow_smoke_hybrid_only():
    """1M flows / 8 Gb/s offered: completes in seconds on the fluid plane.

    Pure-packet mode is structurally unable to run this point in CI
    (≥2M packet emissions through a 4-hop pipeline plus 1M source
    objects); the recorded wall clock documents what the hybrid plane
    buys.  The line rate is below the aggregate load's headroom
    requirement only on the fattened topology run_scale builds for it —
    here we keep flows fluid end to end and verify the integral.
    """
    t0 = perf_counter()
    res = run_scale(
        mode="hybrid", n_flows=N_FLOWS_SMOKE, n_aggregates=20, measure_s=0.2
    )
    wall = perf_counter() - t0
    _record("million_flow_smoke", {
        "n_flows": N_FLOWS_SMOKE,
        "n_aggregates": 20,
        "offered_bps": N_FLOWS_SMOKE * FLOW_RATE_BPS,
        "wall_s": wall,
        "delivered_pkts": res["delivered_pkts"],
        "pure_packet_feasible": False,
    })
    assert res["delivered_pkts"] > 0
    assert res["delivered_pkts"] == res["offered_pkts"]
    # Seconds, not minutes: the point of the exercise.
    assert wall < 120.0
