"""E9 — Ablations: schedulers, AQM, EXP/PHP, stack, L-LSP, iBGP topology."""

import pytest

from repro.experiments.e9_ablations import (
    run_e9a_schedulers,
    run_e9b_aqm,
    run_e9c_exp_php,
    run_e9d_stack_overhead,
    run_e9e_ibgp,
)
from repro.metrics.table import print_table


def test_e9a_schedulers_table(run_once):
    rows, raw = run_once(run_e9a_schedulers, measure_s=6.0)
    print_table(rows, title="E9a — core scheduler vs EF quality and BE cost")
    by = {r["scheduler"]: r for r in rows}
    assert by["fifo"]["voice_loss%"] > 5
    assert by["wfq"]["voice_loss%"] == 0.0
    assert by["priority"]["voice_p99_ms"] < by["fifo"]["voice_p99_ms"] / 3


def test_e9b_aqm_table(run_once):
    rows, raw = run_once(run_e9b_aqm, measure_s=6.0)
    print_table(rows, title="E9b — AQM vs standing-queue delay under bursty AF load")
    by = {r["aqm"]: r for r in rows}
    # RED keeps the standing queue (mean delay) below DropTail's.
    assert by["red"]["mean_delay_ms"] < by["droptail"]["mean_delay_ms"]


def test_e9c_exp_php_table(run_once):
    rows, raw = run_once(run_e9c_exp_php, measure_s=6.0)
    print_table(rows, title="E9c — EXP placement / PHP vs last-hop voice QoS")
    by = {r["variant"]: r for r in rows}
    assert by["both+php"]["voice_loss%"] == 0.0
    assert by["outer-only+php"]["voice_loss%"] > 5          # the RFC 3270 hole
    assert by["outer-only+explicit-null"]["voice_loss%"] == 0.0


def test_e9d_stack_overhead_table(run_once):
    rows, raw = run_once(run_e9d_stack_overhead)
    print_table(rows, title="E9d — wire efficiency vs label-stack depth")
    effs = [r["eff_1400B"] for r in rows]
    assert effs == sorted(effs, reverse=True)


def test_e9e_ibgp_table(run_once):
    rows, raw = run_once(run_e9e_ibgp)
    print_table(rows, title="E9e — iBGP full mesh vs route reflector")
    by = {(r["pes"], r["topology"]): r for r in rows}
    assert by[(8, "full-mesh")]["sessions"] == 28
    assert by[(8, "route-reflector")]["sessions"] == 7


def test_e9f_elsp_llsp_table(run_once):
    from repro.experiments.e9_ablations import run_e9f_elsp_llsp

    rows, raw = run_once(run_e9f_elsp_llsp, measure_s=6.0)
    print_table(rows, title="E9f — E-LSP (EXP classes) vs L-LSP (per-class LSPs)")
    by = {r["model"]: r for r in rows}
    # Same QoS...
    assert by["l-lsp"]["voice_loss%"] == by["e-lsp"]["voice_loss%"] == 0.0
    assert by["l-lsp"]["voice_p99_ms"] == pytest.approx(
        by["e-lsp"]["voice_p99_ms"], rel=0.3
    )
    # ...at 3x the label state.
    assert by["l-lsp"]["lfib_entries"] == 3 * by["e-lsp"]["lfib_entries"]
