"""E15 — churn storms: incremental MP-BGP under operational stress."""

from repro.experiments.e15_churn import run_e15
from repro.metrics.table import print_table


def test_e15_churn_table(run_once):
    rows, raw = run_once(run_e15, n_sites=500)
    print_table(rows, title="E15 — churn storms at N=500")
    storms = {r["storm"]: r for r in rows if not r["storm"].startswith("—")}
    assert set(storms) == {"site-flap", "pe-drain", "vpn-wave", "link-flap"}

    # Delta distribution: a 10-flap storm moves tens of NLRI, not ten
    # full ~2N-route tables.
    site = storms["site-flap"]
    assert site["withdrawn"] >= 10
    assert 0 < site["updates"] < raw["n_sites"]
    # Link flaps repair transport through the IGP fast path; reachability
    # (BGP) stays silent because next hops are loopbacks.
    link = storms["link-flap"]
    assert link["updates"] == 0
    assert link["spf_installs"] > 0
    # A drain + restore round-trips the drained PE's share of the table.
    drain = storms["pe-drain"]
    assert drain["imported"] == drain["removed"] > 0

    # Topology pricing: RR layouts cut sessions vs the full mesh at equal
    # per-route fan-out; the redundant pair pays duplicate UPDATEs that
    # cluster-list suppression absorbs.
    topo = {r["topology"]: r for r in raw["topology"]}
    full, rr = topo["full-mesh"], topo["route-reflector"]
    assert full["sessions"] > rr["sessions"]
    assert full["updates_per_route"] == rr["updates_per_route"]
    redundant = topo["rr-redundant"]
    assert redundant["suppressed_per_route"] > 0
