"""E4 — Encryption vs QoS: IPsec overlay against the MPLS VPN (claim C3)."""

from repro.experiments.e4_ipsec import run_e4
from repro.metrics.table import print_table


def test_e4_ipsec_qos_table(run_once):
    rows, raw = run_once(run_e4, measure_s=8.0)
    print_table(rows, title="E4 — tunnel type vs per-class QoS and tunnel cost")
    assert raw["ipsec-blind"]["voice"].loss_ratio > 0.1     # QoS erased
    assert raw["ipsec-copy"]["voice"].loss_ratio == 0.0     # copy-out restores
    assert raw["mpls-vpn"]["voice"].loss_ratio == 0.0       # EXP carries class
    assert raw["mpls-vpn"]["voice_overhead_bytes"] < raw["ipsec-blind"]["voice_overhead_bytes"]
