"""Shared benchmark plumbing.

Every benchmark regenerates one DESIGN.md §3 experiment: it runs the
experiment once under pytest-benchmark (wall-clock of the whole experiment
is itself a useful number for a simulator) and prints the result table the
paper-style analysis reads.  Use ``pytest benchmarks/ --benchmark-only -s``
to see the tables inline; they are printed to stdout either way.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark clock."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
