"""E3 — Forwarding cost: LPM trie vs exact-match label lookup (claim C4).

Micro-benchmarks the real data structures at provider-like table sizes.
"""

import numpy as np

from repro.experiments.e3_forwarding import (
    build_random_fib,
    build_random_lfib,
    run_e3,
)
from repro.metrics.table import print_table


def test_e3_forwarding_table(run_once):
    rows, raw = run_once(run_e3, table_sizes=(1_000, 10_000, 50_000))
    print_table(rows, title="E3 — lookups/second, FIB longest-prefix match vs LFIB")
    assert all(r["speedup"] > 2 for r in rows)


def test_e3_lpm_lookup_rate(benchmark):
    rng = np.random.default_rng(7)
    fib, addrs = build_random_fib(10_000, rng)
    keys = [int(a) for a in rng.choice(addrs, size=5_000)]

    def lookups():
        for k in keys:
            fib.lookup(k)

    benchmark(lookups)


def test_e3_label_lookup_rate(benchmark):
    rng = np.random.default_rng(7)
    lfib, labels = build_random_lfib(10_000)
    keys = [int(l) for l in rng.choice(labels, size=5_000)]

    def lookups():
        for k in keys:
            lfib.lookup(k)

    benchmark(lookups)
