"""E5 — End-to-end SLA: the §5 chain (CPE CBQ → DSCP → EXP core), ablated."""

from repro.experiments.e5_sla import run_e5
from repro.metrics.table import print_table


def test_e5_end_to_end_sla_table(run_once):
    rows, raw = run_once(run_e5, measure_s=8.0)
    print_table(rows, title="E5 — SLA conformance per QoS-chain stage")
    assert raw["full"]["voice_sla"].conformant
    assert raw["full"]["data_sla"].conformant
    for stage in ("none", "cbq-only", "core-only"):
        assert not raw[stage]["voice_sla"].conformant
