"""Observability overhead benchmarks: the SLO engine must be free when off.

ISSUE 6 acceptance: with SLO and span tracing *disabled* (the default),
the E12a fast-path speedup over the frozen reference stack must hold —
the new hooks add at most a ``None`` check per delivery and a ``getattr``
per control-plane event, which is inside clock noise of the PR 5
baseline (≥2× vs reference, same floor as ``test_engine_performance``;
the floor holding proves the added overhead is ≤3%, since the baseline
cleared it with ≥2.06×).  Enabled-mode cost is *measured and recorded*
(soft floors): live SLO conformance and convergence tracing are priced,
not free, and ``BENCH_obs.json`` documents the price.

Headline numbers land in ``BENCH_obs.json`` at the repo root (CI uploads
it as a workflow artifact).
"""

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.obs import runtime
from repro.obs.sketch import QuantileSketch
from repro.sim.reference import reference_stack

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

# Same end-to-end floor as the engine benchmarks: if the observability
# hooks cost anything material, this stops clearing.
MIN_E2E_SPEEDUP = 2.0
# Enabled-mode budget (soft): live SLO may cost at most 30% end to end.
MAX_SLO_ENABLED_OVERHEAD = 1.30

_SOFT_FLOORS = os.environ.get("BENCH_PERF_NONBLOCKING") == "1"


def _require_floor(speedup: float, floor: float, msg: str, soft: bool = False) -> None:
    if speedup >= floor:
        return
    if _SOFT_FLOORS or soft:
        pytest.xfail(msg)
    pytest.fail(msg)


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_obs.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of_pair(fn_new, fn_ref, rounds: int) -> tuple[float, float]:
    """Best-of-``rounds`` wall clock for both sides, interleaved so slow
    drift (thermal throttling, background load) lands on both."""
    best_new = best_ref = float("inf")
    for i in range(rounds):
        order = (fn_new, fn_ref) if i % 2 == 0 else (fn_ref, fn_new)
        for fn in order:
            t0 = perf_counter()
            fn()
            dt = perf_counter() - t0
            if fn is fn_new:
                best_new = min(best_new, dt)
            else:
                best_ref = min(best_ref, dt)
    return best_new, best_ref


def test_disabled_slo_and_spans_keep_fast_path_floor():
    """The acceptance case: hooks off, E12a speedup vs reference holds.

    The PR 5 baseline cleared ≥2× on this scenario before the SLO/span
    hooks existed; still clearing the same floor bounds the disabled-mode
    overhead well under the 3% budget."""
    from repro.experiments.e12_elastic import run_e12a_aqm

    def run_new():
        runtime.set_packet_counters(False)
        try:
            run_e12a_aqm()
        finally:
            runtime.set_packet_counters(True)

    def run_ref():
        with reference_stack():
            run_e12a_aqm()

    t_new, t_ref = _best_of_pair(run_new, run_ref, rounds=4)
    speedup = t_ref / t_new
    _record("disabled_overhead_e12a", {
        "new_s": t_new,
        "reference_s": t_ref,
        "speedup": speedup,
        "min_required": MIN_E2E_SPEEDUP,
        "note": "SLO engine + convergence tracer detached (default)",
    })
    _require_floor(speedup, MIN_E2E_SPEEDUP, (
        f"e12a speedup with obs hooks disabled {speedup:.2f}x < "
        f"{MIN_E2E_SPEEDUP}x (new {t_new:.3f} s vs reference {t_ref:.3f} s) "
        f"— the SLO/span hooks are no longer off-path"
    ))


def test_slo_enabled_overhead_documented():
    """Price of live SLO conformance on E5 (streaming on vs off)."""
    from repro.experiments.e5_sla import run_stage

    def run_off():
        run_stage("full", measure_s=2.0, streaming=False)

    def run_on():
        run_stage("full", measure_s=2.0, streaming=True)

    t_off, t_on = _best_of_pair(run_off, run_on, rounds=3)
    overhead = t_on / t_off
    _record("slo_enabled_e5", {
        "streaming_off_s": t_off,
        "streaming_on_s": t_on,
        "overhead": overhead,
        "max_budget": MAX_SLO_ENABLED_OVERHEAD,
    })
    # Soft: enabled mode is allowed to cost, the budget just flags drift.
    _require_floor(MAX_SLO_ENABLED_OVERHEAD, overhead, (
        f"live SLO engine costs {overhead:.2f}x on e5 "
        f"(budget {MAX_SLO_ENABLED_OVERHEAD}x)"
    ), soft=True)


def test_span_tracing_enabled_overhead_documented():
    """Price of convergence tracing on an E11 flap (spans on vs off)."""
    from repro.experiments.e11_resilience import run_variant

    def run_off():
        run_variant("igp-tuned", "igp", 1.0, measure_s=4.0)

    def run_on():
        run_variant("igp-tuned", "igp", 1.0, measure_s=4.0, trace_spans=True)

    t_off, t_on = _best_of_pair(run_off, run_on, rounds=3)
    overhead = t_on / t_off
    _record("spans_enabled_e11", {
        "tracing_off_s": t_off,
        "tracing_on_s": t_on,
        "overhead": overhead,
        "note": "includes the healing probe stream the tracer injects",
    })
    # The tracer's per-event cost is negligible; the healing probe is the
    # real (and intended) cost.  Record only; 2x is a drift tripwire.
    _require_floor(2.0, overhead, (
        f"convergence tracing costs {overhead:.2f}x on e11 (tripwire 2x)"
    ), soft=True)


def test_sketch_insert_throughput():
    """Streaming quantile sketch: inserts must stay cheap enough to ride
    the delivery path (soft floor: ≥1M inserts/s on any modern box)."""
    n = 200_000
    sk = QuantileSketch(k=2048)
    values = [(i * 2654435761 % 1000003) / 1000003.0 for i in range(n)]
    t0 = perf_counter()
    insert = sk.insert
    for v in values:
        insert(v)
    dt = perf_counter() - t0
    rate = n / dt
    # One query amortises the materialisation cost into the number.
    q = sk.query(99.0)
    _record("sketch_insert_throughput", {
        "inserts": n,
        "wall_s": dt,
        "inserts_per_sec": rate,
        "retained": sk.retained,
        "p99_sample": q,
    })
    assert sk.retained < 16 * 2048  # bounded memory held
    _require_floor(rate, 1e6, (
        f"sketch insert throughput {rate:.0f}/s < 1M/s"
    ), soft=True)
