"""E6 — Traffic engineering on the fish: CSPF tunnels vs shortest path (C7)."""

from repro.experiments.e6_te import run_e6
from repro.metrics.table import print_table


def test_e6_traffic_engineering_table(run_once):
    rows, raw = run_once(run_e6, measure_s=6.0)
    print_table(
        rows,
        columns=["config", "flow", "loss%", "thru_kbps", "path",
                 "util_bottom", "util_top"],
        title="E6 — per-flow goodput and branch utilization",
    )
    sp, te = raw["shortest-path"], raw["cspf-te"]
    assert max(f.loss_ratio for f in sp["flows"]) > 0.2
    assert all(f.loss_ratio < 0.01 for f in te["flows"])
    assert te["aggregate_goodput_bps"] > 1.1 * sp["aggregate_goodput_bps"]
    assert te["util_top"] > 0.2 and sp["util_top"] < 0.01
