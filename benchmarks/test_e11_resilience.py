"""E11 — Link-failure recovery: IGP reconvergence vs MPLS fast reroute."""

from repro.experiments.e11_resilience import run_e11
from repro.metrics.table import print_table


def test_e11_resilience_table(run_once):
    rows, raw = run_once(run_e11, measure_s=10.0)
    print_table(rows, title="E11 — packets lost / outage per recovery regime")
    by = {r["variant"]: r for r in rows}
    # Outage tracks the recovery delay; FRR beats default IGP by ~100x.
    assert by["igp-default"]["outage_s"] > 4.0
    assert by["igp-tuned"]["outage_s"] < by["igp-default"]["outage_s"] / 3
    assert by["frr"]["outage_s"] < 0.2
    assert by["igp-default"]["outage_s"] / by["frr"]["outage_s"] > 20
