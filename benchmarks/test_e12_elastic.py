"""E12 — Elastic (closed-loop) traffic: AQM trade-offs and EF protection."""

from repro.experiments.e12_elastic import run_e12a_aqm, run_e12b_voice_vs_elastic
from repro.metrics.table import print_table


def test_e12a_aqm_table(run_once):
    rows, raw = run_once(run_e12a_aqm, duration_s=15.0)
    print_table(rows, title="E12a — DropTail vs RED under four Reno flows")
    by = {r["aqm"]: r for r in rows}
    # RED cuts the standing queue substantially while keeping the pipe busy.
    assert by["red"]["p50_delay_ms"] < by["droptail"]["p50_delay_ms"] / 1.5
    assert by["red"]["utilization%"] > 75
    assert by["droptail"]["utilization%"] > 85


def test_e12b_voice_vs_elastic_table(run_once):
    rows, raw = run_once(run_e12b_voice_vs_elastic, duration_s=12.0)
    print_table(rows, title="E12b — EF voice against greedy adaptive flows")
    by = {r["scheduler"]: r for r in rows}
    assert by["wfq"]["voice_loss%"] == 0.0
    assert by["wfq"]["voice_p95_ms"] < by["fifo"]["voice_p95_ms"] / 5
    # Elastic traffic still fills most of the pipe either way.
    assert by["wfq"]["elastic_goodput_kbps"] > 3500
