"""E2 — Per-class QoS: best-effort IP vs DiffServ vs DiffServ-over-MPLS.

Regenerates the claim-C2 comparison: the same EF/AF/BE mix over a congested
backbone under the three architectures.
"""

from repro.experiments.e2_qos import run_e2
from repro.metrics.table import print_table


def test_e2_qos_classes_table(run_once):
    rows, raw = run_once(run_e2, measure_s=8.0)
    print_table(rows, title="E2 — per-class delay/jitter/loss by backbone architecture")
    fifo_voice = raw["ip-fifo"]["voice"]
    mpls_voice = raw["mpls-diffserv"]["voice"]
    assert fifo_voice.loss_ratio > 0.05            # plain IP drowns voice
    assert mpls_voice.loss_ratio == 0.0            # MPLS+DiffServ protects it
    assert fifo_voice.p99_delay_s / mpls_voice.p99_delay_s > 5


def test_e2_load_sweep_figure(run_once):
    """The E2 figure: voice p99 vs offered BE load (the crossover curve)."""
    from repro.experiments.e2_qos import run_e2_load_sweep

    rows, raw = run_once(run_e2_load_sweep, loads=(0.5, 0.8, 1.0, 1.2, 1.5),
                         measure_s=5.0)
    print_table(rows, title="E2 figure — voice p99 delay vs offered load")
    fifo = [r for r in rows if r["config"] == "ip-fifo"]
    mpls = [r for r in rows if r["config"] == "mpls-diffserv"]
    # FIFO voice delay is monotone in load and explodes past saturation...
    fifo_delays = [r["voice_p99_ms"] for r in fifo]
    assert fifo_delays == sorted(fifo_delays)
    assert fifo_delays[-1] > 10 * fifo_delays[0]
    # ...while the DiffServ/MPLS curve stays flat.
    mpls_delays = [r["voice_p99_ms"] for r in mpls]
    assert max(mpls_delays) < 1.5 * min(mpls_delays)
