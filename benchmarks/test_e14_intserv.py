"""E14 — IntServ per-flow vs DiffServ aggregation: quality vs cost."""

from repro.experiments.e14_intserv import run_e14
from repro.metrics.table import print_table


def test_e14_intserv_table(run_once):
    rows, raw = run_once(run_e14, flow_counts=(8, 32), measure_s=6.0)
    print_table(rows, title="E14 — per-flow reservations vs class aggregation")
    by = {(r["arch"], r["flows"]): r for r in rows}
    # Same protection...
    for n in (8, 32):
        assert by[("intserv", n)]["voice_loss%"] == 0.0
        assert by[("diffserv", n)]["voice_loss%"] == 0.0
    # ...but IntServ state/messages grow linearly while DiffServ is constant.
    assert by[("intserv", 32)]["core_state/router"] == 4 * by[("intserv", 8)]["core_state/router"]
    assert by[("diffserv", 32)]["core_state/router"] == by[("diffserv", 8)]["core_state/router"]
    assert by[("intserv", 32)]["refresh/30s"] > 0
    assert by[("diffserv", 32)]["refresh/30s"] == 0
