"""Control-plane fast-path benchmarks.

Self-calibrating: each benchmark times the *reference* implementation
(``repro.routing.reference`` — the pre-fast-path code, kept verbatim) and
the current one on twin copies of the same topology, in the same process,
so the asserted speedups hold on any machine rather than against a number
measured once on one box.  Parity of the produced FIBs is held separately
by ``tests/test_spf_parity.py``; here we only check the clock.

Headline numbers land in ``BENCH_control_plane.json`` at the repo root
(CI uploads it as a workflow artifact):

* full IGP convergence of the 12-node reference backbone (target ≥3×),
* reconvergence after a single core-link flap (target ≥5×, the
  incremental-SPF payoff),
* the paper-scale E1 rows (N=500 and N=1000 sites) with wall-clock for
  the overlay's O(N²) provisioning vs the MPLS VPN's O(N).

Timings use ``time.perf_counter`` directly (best of several rounds), not
pytest-benchmark stats, so the file also runs unchanged under
``--benchmark-disable``.
"""

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.experiments.e1_scalability import run_e1
from repro.routing.reference import (
    clear_routes_reference,
    converge_reference,
    reconverge_reference,
)
from repro.routing.router import Router
from repro.routing.spf import clear_routes, converge, reconverge
from repro.topology import Network, build_backbone

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_control_plane.json"

# The speedup floors the optimization must clear on the 12-node backbone.
MIN_CONVERGE_SPEEDUP = 3.0
MIN_RECONVERGE_SPEEDUP = 5.0
# Single-site churn at N=500: delta distribution vs monolithic converge.
MIN_CHURN_SPEEDUP = 5.0

# On shared CI runners a GC pause or a noisy neighbour inside either
# timing window can sink the ratio no matter how the rounds are arranged.
# BENCH_PERF_NONBLOCKING=1 (set in the CI workflow) downgrades a missed
# floor to xfail — the numbers are still measured, recorded, and uploaded
# as an artifact — while local/acceptance runs stay strict.
_SOFT_FLOORS = os.environ.get("BENCH_PERF_NONBLOCKING") == "1"


def _require_floor(speedup: float, floor: float, msg: str) -> None:
    if speedup >= floor:
        return
    if _SOFT_FLOORS:
        pytest.xfail(msg)
    pytest.fail(msg)


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_control_plane.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of_pair(fn_new, fn_ref, rounds: int) -> tuple[float, float]:
    """Best-of-``rounds`` wall clock for both sides.

    Rounds are interleaved and the within-round order alternates, so slow
    drift (thermal throttling, background load) lands on both
    implementations instead of biasing whichever side happened to run in
    the noisy window.
    """
    best_new = best_ref = float("inf")
    for i in range(rounds):
        order = (fn_new, fn_ref) if i % 2 == 0 else (fn_ref, fn_new)
        for fn in order:
            t0 = perf_counter()
            fn()
            dt = perf_counter() - t0
            if fn is fn_new:
                best_new = min(best_new, dt)
            else:
                best_ref = min(best_ref, dt)
    return best_new, best_ref


def _backbone() -> Network:
    net = Network(seed=19)
    build_backbone(net)
    return net


def _routers(net: Network) -> list[Router]:
    return [n for n in net.nodes.values() if isinstance(n, Router)]


def test_full_converge_speedup():
    """Cold full convergence: fresh graph + every SPF + every install."""
    new, ref = _backbone(), _backbone()
    new_routers, ref_routers = _routers(new), _routers(ref)

    def run_new():
        for r in new_routers:
            clear_routes(r)
        # Invalidate the cached domain view so the run is genuinely cold
        # (graph rebuild + all 12 SPF runs), not served from the memo.
        new.topology_generation += 1
        converge(new)

    def run_ref():
        for r in ref_routers:
            clear_routes_reference(r)
        converge_reference(ref)

    t_new, t_ref = _best_of_pair(run_new, run_ref, rounds=7)
    speedup = t_ref / t_new
    _record("converge_backbone", {
        "new_s": t_new,
        "reference_s": t_ref,
        "speedup": speedup,
        "min_required": MIN_CONVERGE_SPEEDUP,
    })
    _require_floor(speedup, MIN_CONVERGE_SPEEDUP, (
        f"full converge speedup {speedup:.2f}x < {MIN_CONVERGE_SPEEDUP}x "
        f"(new {t_new * 1e3:.3f} ms vs reference {t_ref * 1e3:.3f} ms)"
    ))


def test_single_link_reconverge_speedup():
    """One core trunk flaps; incremental SPF touches only affected trees."""
    new, ref = _backbone(), _backbone()
    converge(new)
    converge_reference(ref)
    dl_new = new.link_between("P1", "P2")
    dl_ref = ref.link_between("P1", "P2")

    def flap_new():
        dl_new.set_up(False)
        reconverge(new)
        dl_new.set_up(True)
        reconverge(new)

    def flap_ref():
        dl_ref.set_up(False)
        reconverge_reference(ref)
        dl_ref.set_up(True)
        reconverge_reference(ref)

    t_new, t_ref = _best_of_pair(flap_new, flap_ref, rounds=7)
    speedup = t_ref / t_new
    _record("reconverge_single_link", {
        "new_s": t_new,
        "reference_s": t_ref,
        "speedup": speedup,
        "min_required": MIN_RECONVERGE_SPEEDUP,
    })
    _require_floor(speedup, MIN_RECONVERGE_SPEEDUP, (
        f"single-link reconverge speedup {speedup:.2f}x < "
        f"{MIN_RECONVERGE_SPEEDUP}x "
        f"(new {t_new * 1e3:.3f} ms vs reference {t_ref * 1e3:.3f} ms)"
    ))


def test_single_site_churn_speedup():
    """One site flaps at N=500: the delta path touches that site's NLRI
    while the frozen engine can only repair state with a full converge."""
    from repro.experiments.e1_scalability import mpls_base
    from repro.vpn.reference import MpBgpReference

    n_sites = 500
    new_ctx = mpls_base(n_sites)
    ref_ctx = mpls_base(n_sites)
    engine = new_ctx["prov"].bgp_engine()
    pe = new_ctx["nodes"]["E1"]
    vrf = pe.vrfs["corp"]
    site_id = next(
        r.origin_site
        for r in vrf.local_routes().values()
        if r.origin_site is not None
    )
    ref_engine = MpBgpReference(ref_ctx["net"], ref_ctx["prov"].pes())

    # State-neutral rounds: the withdraw retracts the site's NLRI from
    # every importing VRF, the export_delta re-advertises it from the
    # still-intact locals.  The reference's only repair tool for the same
    # event is its monolithic full converge.
    def churn_new():
        engine.withdraw(pe, vrf="corp", site=site_id)
        engine.export_delta(pe, vrf)

    def churn_ref():
        ref_engine.converge()

    t_new, t_ref = _best_of_pair(churn_new, churn_ref, rounds=5)
    speedup = t_ref / t_new
    _record("bgp_single_site_churn", {
        "sites": n_sites,
        "new_s": t_new,
        "reference_s": t_ref,
        "speedup": speedup,
        "min_required": MIN_CHURN_SPEEDUP,
    })
    _require_floor(speedup, MIN_CHURN_SPEEDUP, (
        f"single-site churn speedup {speedup:.2f}x < {MIN_CHURN_SPEEDUP}x "
        f"(new {t_new * 1e3:.3f} ms vs reference {t_ref * 1e3:.3f} ms)"
    ))


def test_churn_storm_suite():
    """The E15 storm sequence at paper scale — per-storm wall time and
    exact UPDATE counts recorded for trend tracking.  No speedup floor:
    absolute storm latency is box-dependent, so the JSON carries
    ``floor_enforced: false`` and bench_trend treats it as data-only."""
    from repro.experiments.e1_scalability import mpls_base
    from repro.experiments.e15_churn import churn_storms

    n_sites = 500
    ctx = mpls_base(n_sites)
    t0 = perf_counter()
    rows = churn_storms(ctx, site_flaps=10, wave_sites=8, link_flaps=2)
    total_s = perf_counter() - t0

    by_storm = {r["storm"]: r for r in rows}
    assert set(by_storm) == {"site-flap", "pe-drain", "vpn-wave", "link-flap"}
    # The delta path's whole point: a 10-flap storm withdraws ~10 NLRI
    # instead of re-distributing the full ~2N-route table per event.
    assert by_storm["site-flap"]["withdrawn"] >= 10
    assert by_storm["site-flap"]["updates"] > 0
    # Link flaps ride the IGP fast path; next hops are loopbacks, so BGP
    # stays silent — that silence is the paper's stability argument.
    assert by_storm["link-flap"]["updates"] == 0
    assert by_storm["link-flap"]["spf_installs"] > 0
    _record("bgp_churn_storms", {
        "sites": n_sites,
        "total_s": total_s,
        "floor_enforced": False,
        "rows": rows,
    })


def test_e1_paper_scale():
    """E1 at N=500 and N=1000 sites — the paper's scalability argument at
    the scale the paper talks about, not a toy slice of it."""
    t0 = perf_counter()
    rows, raw = run_e1(site_counts=(500, 1000))
    total_s = perf_counter() - t0

    by_n = {row["sites"]: row for row in rows}
    assert by_n[500]["N(N-1)/2"] == 500 * 499 // 2 == 124_750
    assert by_n[1000]["N(N-1)/2"] == 1000 * 999 // 2 == 499_500
    for n, row in by_n.items():
        assert row["overlay_VCs"] == row["N(N-1)/2"]
        # Core routers still hold zero per-VPN state at paper scale.
        assert row["mpls_core_vpn_state"] == 0
    _record("e1_paper_scale", {
        "total_s": total_s,
        "rows": [
            {
                "sites": row["sites"],
                "overlay_VCs": row["overlay_VCs"],
                "overlay_state": row["overlay_state"],
                "overlay_sig_msgs": row["overlay_sig_msgs"],
                "mpls_vrf_routes": row["mpls_vrf_routes"],
                "bgp_updates": row["bgp_updates"],
                "ldp_msgs": row["ldp_msgs"],
                "overlay_wall_s": row["overlay_wall_s"],
                "mpls_wall_s": row["mpls_wall_s"],
            }
            for row in rows
        ],
    })
