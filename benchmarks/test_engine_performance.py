"""Event-engine fast-path benchmarks.

Self-calibrating like ``test_control_plane_performance.py``: each
benchmark times the *reference* stack (``repro.sim.reference`` — the
pre-fast-path engine plus the pre-PR interface driver, packet
allocation, and unconditional queue counters, all frozen verbatim) and
the current fast path in the same process, so the asserted speedups hold
on any machine.  Event-ordering parity between the two is held
separately by ``tests/test_engine_parity.py``; here we only check the
clock.

Headline numbers land in ``BENCH_engine.json`` at the repo root (CI
uploads it as a workflow artifact):

* end-to-end wall clock of a full experiment scenario (E12a elastic
  traffic with RED AQM, and the E2 MPLS DiffServ config) — target ≥2×,
* the telemetry off-path: per-packet counters on vs off, asserting the
  switch actually removes work,
* sweep scaling: the same grid at 1 vs 4 workers.  The ≥3× scaling
  floor only *can* hold with ≥4 usable cores, so it is enforced
  core-aware: on smaller boxes (or under BENCH_PERF_NONBLOCKING=1) the
  measured factor is still recorded but a miss downgrades to xfail.

Timings use ``time.perf_counter`` (best of interleaved rounds), so the
file runs unchanged under ``--benchmark-disable``.
"""

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.obs import runtime
from repro.sim.reference import reference_stack
from repro.sweep import run_sweep, smoke_grid
from repro.sweep.grids import e1_grid

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

# ISSUE 4 acceptance: ≥2× end-to-end on at least one full experiment
# scenario (single process), ≥3× sweep scaling at 4 workers.  The
# columnar burst tier (ISSUE 7) plus admitting capacity-bounded
# GenCaches to it (per-burst epoch eviction, ISSUE 8) raised the e12a
# measurement to 2.12-2.36× standalone against the frozen reference
# stack; under full-suite contention on a loaded single-core box it
# dips to ~2.09×, so the enforced floor stays at 2.1× — the margin is
# headroom for shared runners, not doubt about the speedup.
MIN_E2E_SPEEDUP = 2.0
MIN_E12A_SPEEDUP = 2.1
MIN_SWEEP_SCALING = 3.0
SWEEP_WORKERS = 4

_SOFT_FLOORS = os.environ.get("BENCH_PERF_NONBLOCKING") == "1"


def _require_floor(speedup: float, floor: float, msg: str, soft: bool = False) -> None:
    if speedup >= floor:
        return
    if _SOFT_FLOORS or soft:
        pytest.xfail(msg)
    pytest.fail(msg)


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_engine.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of_pair(fn_new, fn_ref, rounds: int) -> tuple[float, float]:
    """Best-of-``rounds`` wall clock for both sides, interleaved so slow
    drift (thermal throttling, background load) lands on both."""
    best_new = best_ref = float("inf")
    for i in range(rounds):
        order = (fn_new, fn_ref) if i % 2 == 0 else (fn_ref, fn_new)
        for fn in order:
            t0 = perf_counter()
            fn()
            dt = perf_counter() - t0
            if fn is fn_new:
                best_new = min(best_new, dt)
            else:
                best_ref = min(best_ref, dt)
    return best_new, best_ref


def _e2e_case(section: str, run_once, floor: float = MIN_E2E_SPEEDUP) -> None:
    """Whole experiment, fast path (counters off, as a sweep runs it)
    vs the frozen reference stack."""

    def run_new():
        runtime.set_packet_counters(False)
        try:
            run_once()
        finally:
            runtime.set_packet_counters(True)

    def run_ref():
        with reference_stack():
            run_once()

    t_new, t_ref = _best_of_pair(run_new, run_ref, rounds=4)
    speedup = t_ref / t_new
    _record(section, {
        "new_s": t_new,
        "reference_s": t_ref,
        "speedup": speedup,
        "min_required": floor,
    })
    _require_floor(speedup, floor, (
        f"{section} end-to-end speedup {speedup:.2f}x < {floor}x "
        f"(new {t_new:.3f} s vs reference {t_ref:.3f} s)"
    ))


def test_e2e_elastic_aqm_speedup():
    """E12a — elastic TCP-like traffic through RED AQM.  The heaviest
    packet-churn scenario in the suite: the acceptance case."""
    from repro.experiments.e12_elastic import run_e12a_aqm

    _e2e_case("e2e_e12a_aqm", lambda: run_e12a_aqm(),
              floor=MIN_E12A_SPEEDUP)


def test_e2e_mpls_diffserv_speedup():
    """E2 (mpls-diffserv) — the headline QoS configuration."""
    from repro.experiments.e2_qos import run_config

    _e2e_case(
        "e2e_e2_mpls_diffserv",
        lambda: run_config("mpls-diffserv", measure_s=4.0),
    )


def test_counters_switch_is_off_path():
    """Satellite (b): per-packet ClassStats/drop hooks cost nothing when
    switched off.  Micro-floor: counters-off must not be slower."""
    from repro.experiments.e2_qos import run_config

    def run_off():
        runtime.set_packet_counters(False)
        try:
            run_config("mpls-diffserv", measure_s=4.0)
        finally:
            runtime.set_packet_counters(True)

    def run_on():
        run_config("mpls-diffserv", measure_s=4.0)

    t_off, t_on = _best_of_pair(run_off, run_on, rounds=4)
    ratio = t_on / t_off
    _record("counters_off_path", {
        "counters_on_s": t_on,
        "counters_off_s": t_off,
        "on_over_off": ratio,
        "min_required": 0.97,
    })
    # Equality would already prove the guard free; in practice skipping
    # the bookkeeping wins a few percent.  3% tolerance for clock noise.
    _require_floor(ratio, 0.97, (
        f"counters-off path slower than counters-on: {ratio:.3f}x "
        f"(off {t_off:.3f} s vs on {t_on:.3f} s)"
    ))


def test_sweep_scaling_four_workers():
    """Sweep throughput at 4 workers vs 1 over the E1 grid.

    The ≥3× floor needs ≥4 usable cores; with fewer, parallel workers
    time-slice one CPU and no scheduler can deliver 3×.  The factor is
    measured and recorded regardless, but the floor is enforced
    core-aware (soft on small boxes)."""
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    # The paper's §2.1 scaling grid: overlay vs MPLS provisioning at
    # four site counts — 8 independent, seconds-scale tasks.
    grid = e1_grid(sites=(10, 50, 100, 200), reps=1)

    t0 = perf_counter()
    solo = run_sweep(grid, workers=1)
    t_solo = perf_counter() - t0
    t0 = perf_counter()
    multi = run_sweep(grid, workers=SWEEP_WORKERS)
    t_multi = perf_counter() - t0

    assert solo["rows"] == multi["rows"]  # scaling must not cost determinism
    scaling = t_solo / t_multi
    _record("sweep_scaling", {
        "tasks": len(grid),
        "workers": SWEEP_WORKERS,
        "cores_available": cores,
        "one_worker_s": t_solo,
        "four_worker_s": t_multi,
        "scaling": scaling,
        "min_required": MIN_SWEEP_SCALING,
        "floor_enforced": cores >= SWEEP_WORKERS,
    })
    _require_floor(scaling, MIN_SWEEP_SCALING, (
        f"sweep scaling {scaling:.2f}x < {MIN_SWEEP_SCALING}x at "
        f"{SWEEP_WORKERS} workers ({cores} core(s) available)"
    ), soft=cores < SWEEP_WORKERS)


def test_smoke_grid_stays_fast():
    """The CI smoke sweep must stay seconds-scale."""
    t0 = perf_counter()
    report = run_sweep(smoke_grid(), workers=2)
    wall = perf_counter() - t0
    assert not report["failed"]
    _record("smoke_grid", {"tasks": report["tasks"], "wall_s": wall})
    assert wall < 60.0
