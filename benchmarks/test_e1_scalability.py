"""E1 — Scalability: overlay virtual circuits vs BGP/MPLS VPN state.

Regenerates the paper's §2.1 table (10 sites → 45 VCs, 200 → 19 900) with
live provisioned state on the reference backbone, side by side with the
MPLS VPN's per-PE state and control-message counts.
"""

from repro.experiments.e1_scalability import run_e1
from repro.metrics.table import print_table


def test_e1_scalability_table(run_once):
    rows, raw = run_once(run_e1, site_counts=(10, 50, 100, 200))
    print_table(rows, title="E1 — overlay circuits vs MPLS VPN state (per N sites)")
    # The paper's arithmetic, exactly.
    by_n = {r["sites"]: r for r in rows}
    assert by_n[10]["overlay_VCs"] == 45
    assert by_n[200]["overlay_VCs"] == 19900
    # Quadratic vs linear growth between N=10 and N=200 (20x sites).
    assert by_n[200]["overlay_VCs"] / by_n[10]["overlay_VCs"] > 400
    assert by_n[200]["mpls_vrf_routes"] / by_n[10]["mpls_vrf_routes"] < 40
    assert all(r["mpls_core_vpn_state"] == 0 for r in rows)
