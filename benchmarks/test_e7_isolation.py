"""E7 — Isolation with overlapping address plans + extranet policy (C5)."""

from repro.experiments.e7_isolation import run_e7
from repro.metrics.table import print_table


def test_e7_isolation_table(run_once):
    rows, raw = run_once(run_e7, measure_s=3.0)
    print_table(rows, title="E7 — intra-VPN delivery and cross-VPN leakage")
    for row in rows:
        assert row["delivered_cross"] == 0
        assert row["intra_ratio"] == 1.0
