"""Warm-start sweep benchmarks: converged-base reuse vs cold rebuilds.

The warm-start contract (``repro sweep --warm-start``) is that a grid
whose tasks share converged bases stops paying the build+converge cost
per task: the parent builds each distinct base once and tasks reuse it
through the copy-on-write tiers in :mod:`repro.sweep.runner` — the live
object graph for read-only scenarios, a snapshot blob restored per task
for mutating ones.

Headline numbers land in ``BENCH_sweep.json`` at the repo root (CI
uploads it as a workflow artifact, and ``tools/bench_trend.py`` gates it
against ``benchmarks/baselines/``):

* the E1-scale acceptance case — the paper's §2.1 provisioning grid
  (overlay + MPLS at 200 sites, 8 seeds each) swept cold vs warm at 4
  workers, asserting a ≥3× wall-clock speedup *and* row-for-row report
  equality.  The win comes from eliminating 15 of 16 base builds, not
  from extra parallelism, so the floor holds at any core count; it is
  only softened under ``BENCH_PERF_NONBLOCKING=1`` (shared runners).
* snapshot serialize/restore latency + image size per mutable base
  (e2/e5) — recorded for the trend log, no floor: these bound the
  per-task overhead the blob tier pays for isolation.

Timings use ``time.perf_counter`` (whole sweeps, one measured pass —
a 16-task grid is its own averaging), so the file runs unchanged under
``--benchmark-disable``.
"""

import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.sweep import run_sweep
from repro.sweep.grids import e1_grid

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

MIN_WARM_SPEEDUP = 3.0
SWEEP_WORKERS = 4
E1_SITES = 200
E1_REPS = 8

_SOFT_FLOORS = os.environ.get("BENCH_PERF_NONBLOCKING") == "1"


def _require_floor(speedup: float, floor: float, msg: str) -> None:
    if speedup >= floor:
        return
    if _SOFT_FLOORS:
        pytest.xfail(msg)
    pytest.fail(msg)


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_sweep.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_warm_start_speedup_e1_grid():
    """Acceptance: warm-start ≥3× faster than cold on the E1-scale grid
    at 4 workers, with byte-identical deterministic rows."""
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    grid = e1_grid(sites=(E1_SITES,), reps=E1_REPS)

    t0 = perf_counter()
    cold = run_sweep(grid, workers=SWEEP_WORKERS)
    t_cold = perf_counter() - t0
    t0 = perf_counter()
    warm = run_sweep(grid, workers=SWEEP_WORKERS, warm_start=True)
    t_warm = perf_counter() - t0

    # Warm start must never cost correctness: same rows, nothing failed.
    assert cold["rows"] == warm["rows"]
    assert not cold["failed"] and not warm["failed"]
    assert all(t["warm"] for t in warm["timing"]["per_task"])

    speedup = t_cold / t_warm
    warm_info = warm["timing"]["warm_start"]
    _record("warm_start_e1", {
        "tasks": len(grid),
        "sites": E1_SITES,
        "workers": SWEEP_WORKERS,
        "cores_available": cores,
        "cold_s": t_cold,
        "warm_s": t_warm,
        "base_build_s": warm_info["build_s"],
        "bases": len(warm_info["bases"]),
        "speedup": speedup,
        "min_required": MIN_WARM_SPEEDUP,
        "floor_enforced": True,
    })
    _require_floor(speedup, MIN_WARM_SPEEDUP, (
        f"warm-start sweep speedup {speedup:.2f}x < {MIN_WARM_SPEEDUP}x "
        f"(cold {t_cold:.2f} s vs warm {t_warm:.2f} s, "
        f"{len(grid)} tasks, {cores} core(s))"
    ))


def test_snapshot_latency_and_size_recorded():
    """Blob-tier cost model, for the trend log: how many bytes a
    converged e2/e5 base serializes to, and what one save/restore
    round-trip costs — the per-task isolation overhead of warm start."""
    from repro.experiments.e2_qos import _build as e2_build
    from repro.experiments.e5_sla import _build as e5_build
    from repro.sim.snapshot import restore_network, snapshot_network

    payload = {}
    cases = {
        "e2_mpls_diffserv": lambda: e2_build("mpls-diffserv", seed=0)[0],
        "e5_full": lambda: e5_build("full", seed=0).pop("net"),
    }
    for name, build in cases.items():
        net = build()
        t0 = perf_counter()
        blob = snapshot_network(net)
        t_save = perf_counter() - t0
        t0 = perf_counter()
        net2, _ = restore_network(blob)
        t_restore = perf_counter() - t0
        assert sorted(net2.nodes) == sorted(net.nodes)
        payload[name] = {
            "bytes": len(blob),
            "save_s": t_save,
            "restore_s": t_restore,
        }
    _record("snapshot_roundtrip", payload)
