"""E8 — Mixed backbone (Fig. 4): labeled and unlabeled paths coexist."""

from repro.experiments.e8_mixed import run_e8
from repro.metrics.table import print_table


def test_e8_mixed_backbone_table(run_once):
    rows, raw = run_once(run_e8, measure_s=3.0)
    print_table(rows, title="E8 — delivery and lookup type per path, before/after upgrade")
    for row in rows:
        assert row["recv"] == row["sent"]
    assert raw["mixed"]["census"]["n2.label_lookups"] == 0
    assert raw["all-mpls"]["census"]["n2.label_lookups"] > 0
