"""E13 — Per-VPN service tiers ("assign a QoS level to an entire VPN")."""

from repro.experiments.e13_tiers import run_e13
from repro.metrics.table import print_table


def test_e13_tiers_table(run_once):
    rows, raw = run_once(run_e13, measure_s=8.0)
    print_table(rows, title="E13 — identical workloads, tier-determined outcomes")
    # The tier, not the application, determines the outcome.
    assert raw["gold"].loss_ratio == 0.0
    assert raw["silver"].loss_ratio == 0.0
    assert raw["bronze"].loss_ratio > 0.1
    assert raw["gold"].p99_delay_s < raw["bronze"].p99_delay_s / 5
    # The over-contract gold customer is policed down near its CIR and
    # cannot hurt the in-contract gold customer.
    from repro.experiments.e13_tiers import GOLD
    assert raw["gold-greedy"].throughput_bps < 2.5 * GOLD.cir_bps
    assert raw["gold"].p99_delay_s < 0.05
