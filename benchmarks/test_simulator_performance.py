"""Simulator performance: events/second and packets/second.

Not a paper experiment — a regression guard for the library itself.  The
hpc-parallel guidance is measure-first: these benches make the kernel's
hot loop visible so a future "improvement" that slows packet forwarding
by 2x gets caught in CI.

Besides the pytest-benchmark table, the two tests write their headline
numbers (pkts/sec, events/sec, per-hop µs, speedup vs the pre-pipeline
baseline) to ``BENCH_forwarding.json`` at the repo root, which CI uploads
as a workflow artifact so forwarding throughput is tracked across runs.
"""

import gc
import json
import os
from pathlib import Path
from time import perf_counter

import pytest

from repro.mpls import Lsr, run_ldp
from repro.obs import runtime
from repro.qos.queues import DropTailFifo
from repro.routing.spf import converge
from repro.sim.engine import Simulator
from repro.topology import Network, attach_host, build_line
from repro.traffic.generators import CbrSource
from repro.traffic.sink import FlowSink

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_forwarding.json"

# ISSUE 5 acceptance: batched forwarding ≥1.5× over the scalar path on a
# high fan-in workload (many flows sharing one core LSP).  The columnar
# refactor (ISSUE 7) lifted this shape to ~3×, so the floor moved up to
# 2.5 to guard the gain; the implicit-null fan-in burst has no label work
# to vectorize, which is why its ceiling sits below the label-op shapes.
# CI runs this with BENCH_PERF_NONBLOCKING=1 (shared-runner timing
# noise), which turns a floor miss into xfail while still recording the
# measured number.
MIN_BATCH_SPEEDUP = 2.5
# ISSUE 7 acceptance: the columnar data plane must beat the forced-scalar
# pipeline ≥3.5× (target 5×) on the label-op shapes it was built for —
# the single-group core-LSR swap burst and the real-label imposition
# burst at an ingress PE, both of which hit the uniform apply loops.
MIN_COLUMNAR_SPEEDUP = 3.5
_SOFT_FLOORS = os.environ.get("BENCH_PERF_NONBLOCKING") == "1"


def _require_floor(speedup: float, floor: float, msg: str) -> None:
    if speedup >= floor:
        return
    if _SOFT_FLOORS:
        pytest.xfail(msg)
    pytest.fail(msg)


def _best_of_pair(fn_new, fn_ref, rounds: int) -> tuple[float, float]:
    """Best-of-``rounds`` wall clock for both sides, interleaved so slow
    drift (thermal throttling, background load) lands on both."""
    best_new = best_ref = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()  # timeit's convention: keep collector pauses out of both sides
    try:
        for i in range(rounds):
            order = (fn_new, fn_ref) if i % 2 == 0 else (fn_ref, fn_new)
            for fn in order:
                gc.collect()
                t0 = perf_counter()
                fn()
                dt = perf_counter() - t0
                if fn is fn_new:
                    best_new = min(best_new, dt)
                else:
                    best_ref = min(best_ref, dt)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_new, best_ref

# Mean wall-clock of test_packet_forwarding_throughput on the commit before
# the unified ForwardingPipeline (per-hop closures, no flow/label caches),
# measured on the CI reference machine.  Kept so the emitted speedup keeps
# meaning as the pipeline evolves.
PRE_PIPELINE_FORWARDING_MEAN_S = 1.825


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_forwarding.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _mean_s(benchmark) -> float | None:
    """Mean wall-clock, or None under ``--benchmark-disable`` (the sharded
    CI pass runs benchmarks as plain tests with no timing machinery)."""
    try:
        return benchmark.stats.stats.mean
    except (AttributeError, TypeError):
        return None


def test_kernel_event_throughput(benchmark):
    """Pure scheduler churn: schedule + fire 50k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    events = benchmark(run)
    assert events == 50_000
    mean_s = _mean_s(benchmark)
    if mean_s is not None:
        _record("kernel", {
            "events": events,
            "mean_s": mean_s,
            "events_per_sec": events / mean_s,
        })


def test_packet_forwarding_throughput(benchmark):
    """End-to-end: ~20k packets across a 5-hop routed path."""

    def run():
        net = Network(seed=3)
        routers = build_line(net, 5, rate_bps=1e9)
        tx = attach_host(net, routers[0], "10.200.0.1", name="tx", rate_bps=1e9)
        rx = attach_host(net, routers[4], "10.200.0.2", name="rx", rate_bps=1e9)
        converge(net)
        sink = FlowSink(net.sim).attach(rx)
        src = CbrSource(net.sim, tx.send, "perf", "10.200.0.1", "10.200.0.2",
                        payload_bytes=1000, rate_bps=163.2e6)  # ~20k pps for 1s
        src.start(0.0, stop_at=1.0)
        net.run(until=1.2)
        return sink.received("perf")

    received = benchmark(run)
    assert received > 15_000
    mean_s = _mean_s(benchmark)
    hops = 7  # tx + 5 routers + rx handle the packet once each
    if mean_s is not None:
        _record("forwarding", {
            "packets": received,
            "hops_per_packet": hops,
            "mean_s": mean_s,
            "pkts_per_sec": received / mean_s,
            "per_hop_us": mean_s / (received * hops) * 1e6,
            "pre_pipeline_mean_s": PRE_PIPELINE_FORWARDING_MEAN_S,
            "speedup_vs_pre_pipeline": PRE_PIPELINE_FORWARDING_MEAN_S / mean_s,
        })


def _high_fanin_run(vector: bool) -> int:
    """High fan-in MPLS workload: 8 hosts on one ingress LSR, every flow
    riding the same 4-hop core LSP.  Access and core links are
    infinite-rate (zero serialization), so the 16-packet trains the
    sources emit keep one shared timestamp hop after hop — exactly the
    arrival pattern burst extraction fuses into ``receive_batch`` bursts.
    Packet-level behaviour is mode-independent (held to bit-identical
    traces by ``tests/test_dataplane_batch.py``); only the clock moves.
    """
    runtime.set_vector_mode(vector)
    try:
        net = Network(seed=11)
        pe1 = net.add_node(Lsr(net.sim, "pe1"))
        p1 = net.add_node(Lsr(net.sim, "p1"))
        p2 = net.add_node(Lsr(net.sim, "p2"))
        pe2 = net.add_node(Lsr(net.sim, "pe2"))
        inf = float("inf")
        # 8 hosts x 16-packet trains converge on pe1 inside one timestamp,
        # so the transient queue depth reaches 8x16 - 1; deepen the core
        # queues past that or the default 100-packet FIFO tail-drops.
        deep = lambda node, ifname: DropTailFifo(capacity_packets=1024)
        for a, b in ((pe1, p1), (p1, p2), (p2, pe2)):
            net.connect(a, b, inf, 1e-3, qdisc_factory=deep)
        txs = [
            attach_host(net, pe1, f"10.210.{i}.1", name=f"tx{i}", rate_bps=inf)
            for i in range(8)
        ]
        rx = attach_host(net, pe2, "10.211.0.2", name="rx", rate_bps=inf)
        pe2.interfaces["to-rx"].qdisc.capacity_packets = 1024  # fan-in egress
        converge(net)
        run_ldp(net)
        sink = FlowSink(net.sim).attach(rx)
        for i, tx in enumerate(txs):
            src = CbrSource(net.sim, tx.send, f"fan{i}", f"10.210.{i}.1",
                            "10.211.0.2", payload_bytes=500, rate_bps=8.32e6,
                            src_port=4000 + i, burst=16)
            src.start(0.0, stop_at=1.0)
        net.run(until=1.2)
        assert p1.lfib.lookups > 0  # the flows really rode the LSP
        return sum(sink.received(f"fan{i}") for i in range(8))
    finally:
        runtime.set_vector_mode(True)


def _fanin_ingress_fixture():
    """The fan-in ingress LSR alone, primed for repeated burst injection:
    unbounded egress queue (so later rounds never diverge into the drop
    path) and a busy transmitter after the first packet (the sim never
    runs during timing, so every subsequent packet is a pure enqueue —
    identical work on both sides of the comparison)."""
    net = Network(seed=11)
    pe1 = net.add_node(Lsr(net.sim, "pe1"))
    p1 = net.add_node(Lsr(net.sim, "p1"))
    unbounded = lambda node, ifname: DropTailFifo(capacity_packets=None)
    net.connect(pe1, p1, float("inf"), 1e-3, qdisc_factory=unbounded)
    for i in range(8):
        attach_host(net, pe1, f"10.210.{i}.1", name=f"tx{i}", rate_bps=float("inf"))
    attach_host(net, p1, "10.211.0.2", name="rx", rate_bps=float("inf"))
    converge(net)
    run_ldp(net)
    return pe1


def _mk_fanin_burst(flows: int = 8, per_flow: int = 16) -> list:
    from repro.net.address import IPv4Address
    from repro.net.packet import IPHeader, Packet

    dst = IPv4Address.parse("10.211.0.2")
    items = []
    for i in range(flows):
        src = IPv4Address.parse(f"10.210.{i}.1")
        for s in range(per_flow):
            pkt = Packet(
                ip=IPHeader(src, dst, ttl=64, src_port=4000 + i, dst_port=80),
                payload_bytes=500, flow=f"fan{i}", seq=s,
            )
            items.append((pkt, "to-tx0"))
    return items


def _line_lsp_fixture():
    """4-LSR line ``pe1 - p1 - p2 - pe2`` with the receiver behind pe2.

    pe2 is the egress for the rx /32, so it advertises implicit-null to
    p2 (PHP), p2 advertises a *real* label to p1, and p1 advertises a
    real label to pe1 — giving both columnar hot shapes on one topology:
    pe1 imposes a real label (ingress-PE shape) and p1 swaps it
    (core-LSR shape).  Egress queues are unbounded and the sim clock
    never advances during timing, so every injected burst does identical
    work on both sides of the comparison.
    """
    net = Network(seed=7)
    pe1 = net.add_node(Lsr(net.sim, "pe1"))
    p1 = net.add_node(Lsr(net.sim, "p1"))
    p2 = net.add_node(Lsr(net.sim, "p2"))
    pe2 = net.add_node(Lsr(net.sim, "pe2"))
    unbounded = lambda node, ifname: DropTailFifo(capacity_packets=None)
    for a, b in ((pe1, p1), (p1, p2), (p2, pe2)):
        net.connect(a, b, float("inf"), 1e-3, qdisc_factory=unbounded)
    attach_host(net, pe1, "10.220.0.1", name="tx", rate_bps=float("inf"))
    attach_host(net, pe2, "10.221.0.2", name="rx", rate_bps=float("inf"))
    converge(net)
    run_ldp(net)
    return pe1, p1


def _rx_nhlfe(pe1):
    """pe1's FTN binding for the rx /32 (its label = p1's in-label)."""
    from repro.net.address import IPv4Address

    match = pe1.fib.lookup_prefix(IPv4Address.parse("10.221.0.2"))
    assert match is not None
    prefix, _route = match
    nhlfe = pe1.ftn.lookup(prefix)
    assert nhlfe is not None
    return nhlfe


def _mk_ip_burst(ifname: str, flows: int = 8, per_flow: int = 16) -> list:
    from repro.net.address import IPv4Address
    from repro.net.packet import IPHeader, Packet

    dst = IPv4Address.parse("10.221.0.2")
    items = []
    for i in range(flows):
        src = IPv4Address.parse(f"10.220.{i}.9")
        for s in range(per_flow):
            pkt = Packet(
                ip=IPHeader(src, dst, ttl=64, src_port=4000 + i, dst_port=80),
                payload_bytes=500, flow=f"lsp{i}", seq=s,
            )
            items.append((pkt, ifname))
    # A packet arriving on an interface was just serialized by the
    # upstream transmitter, which reads (and memoizes) wire_bytes —
    # replicate that arrival state so both modes see it.
    for pkt, _ifn in items:
        pkt.wire_bytes
    return items


def _mk_labeled_burst(label: int, ifname: str,
                      flows: int = 8, per_flow: int = 16) -> list:
    items = _mk_ip_burst(ifname, flows, per_flow)
    for pkt, _ifn in items:
        pkt.push_label(label)
        pkt.wire_bytes
    return items


def _forwarding_speedup(node, mk_burst, rounds: int = 6, calls: int = 40):
    """Best-of wall clock for ``receive_batch`` vs the scalar ``receive``
    loop over identical pre-built bursts, interleaved against drift."""
    vec_rounds = [[mk_burst() for _ in range(calls)] for _ in range(rounds)]
    sca_rounds = [[mk_burst() for _ in range(calls)] for _ in range(rounds)]
    burst = len(vec_rounds[0][0])
    vec_iter, sca_iter = iter(vec_rounds), iter(sca_rounds)

    def run_vec() -> None:
        batch = node.receive_batch
        for items in next(vec_iter):
            batch(items)

    def run_scalar() -> None:
        receive = node.receive
        for items in next(sca_iter):
            for pkt, ifn in items:
                receive(pkt, ifn)

    t_vec, t_scalar = _best_of_pair(run_vec, run_scalar, rounds=rounds)
    npkts = rounds * calls * burst * 2
    assert node.stats.rx_packets == npkts
    assert node.stats.forwarded == npkts
    return t_vec, t_scalar


def test_columnar_swap_speedup():
    """Core-LSR shape: a 256-packet single-label SWAP burst (a full VPP-
    style vector) through the columnar pipeline vs the forced-scalar
    ``mpls_stage`` loop.  This is the shape the struct-of-arrays refactor
    targets — one LFIB group probe, mass TTL decrement, uniform swap
    apply — and carries the ISSUE 7 ≥3.5× acceptance floor."""
    from repro.mpls import LabelOp

    pe1, p1 = _line_lsp_fixture()
    in_label = _rx_nhlfe(pe1).labels[0]
    entry = p1.lfib.lookup(in_label)
    assert entry is not None and entry.op is LabelOp.SWAP  # real swap, no PHP

    t_vec, t_scalar = _forwarding_speedup(
        p1, lambda: _mk_labeled_burst(in_label, "to-pe1", flows=16)
    )
    speedup = t_scalar / t_vec
    _record("columnar_swap", {
        "burst": 256,
        "vector_best_s": t_vec,
        "scalar_best_s": t_scalar,
        "speedup_vs_scalar": speedup,
        "floor": MIN_COLUMNAR_SPEEDUP,
    })
    _require_floor(speedup, MIN_COLUMNAR_SPEEDUP, (
        f"columnar swap forwarding {speedup:.2f}x vs scalar "
        f"(floor {MIN_COLUMNAR_SPEEDUP}x): vector {t_vec:.3f}s, "
        f"scalar {t_scalar:.3f}s"
    ))


def test_columnar_imposition_speedup():
    """Ingress-PE shape: 256-packet bursts that impose a *real* (non-
    implicit-null) label — one flow-cache group probe, DSCP→EXP via the
    64-entry LUT, uniform impose apply.  Carries the ISSUE 7 ≥3.5×
    acceptance floor alongside the swap shape."""
    pe1, _p1 = _line_lsp_fixture()
    from repro.mpls import IMPLICIT_NULL

    nhlfe = _rx_nhlfe(pe1)
    assert nhlfe.labels and nhlfe.labels[0] != IMPLICIT_NULL  # real imposition

    t_vec, t_scalar = _forwarding_speedup(
        pe1, lambda: _mk_ip_burst("to-tx", flows=16)
    )
    speedup = t_scalar / t_vec
    _record("columnar_imposition", {
        "burst": 256,
        "vector_best_s": t_vec,
        "scalar_best_s": t_scalar,
        "speedup_vs_scalar": speedup,
        "floor": MIN_COLUMNAR_SPEEDUP,
    })
    _require_floor(speedup, MIN_COLUMNAR_SPEEDUP, (
        f"columnar imposition forwarding {speedup:.2f}x vs scalar "
        f"(floor {MIN_COLUMNAR_SPEEDUP}x): vector {t_vec:.3f}s, "
        f"scalar {t_scalar:.3f}s"
    ))


def test_batched_forwarding_speedup_high_fanin():
    """Vector fast path vs forced-scalar on the shared-LSP fan-in load.

    Two numbers: the end-to-end wall clock of the full simulation
    (informational — dominated by the per-packet transmit/propagation
    event chain, which batching deliberately leaves untouched for
    parity), and the forwarding-stage ratio the floor is asserted on —
    ``receive_batch`` vs the scalar ``receive`` loop over identical
    128-packet fan-in bursts, through the real pipeline (flow/label
    caches, FTN imposition, egress enqueue).
    """
    received = _high_fanin_run(vector=True)
    assert received == _high_fanin_run(vector=False)  # modes agree exactly
    assert received > 15_000
    t_vec_e2e, t_scalar_e2e = _best_of_pair(
        lambda: _high_fanin_run(True), lambda: _high_fanin_run(False), rounds=3
    )

    # Forwarding-stage comparison: every burst pre-built outside the
    # timed region, sides interleaved against drift.
    pe1 = _fanin_ingress_fixture()
    rounds, calls = 4, 40
    vec_rounds = [[_mk_fanin_burst() for _ in range(calls)] for _ in range(rounds)]
    sca_rounds = [[_mk_fanin_burst() for _ in range(calls)] for _ in range(rounds)]
    vec_iter, sca_iter = iter(vec_rounds), iter(sca_rounds)

    def run_vec() -> None:
        batch = pe1.receive_batch
        for items in next(vec_iter):
            batch(items)

    def run_scalar() -> None:
        receive = pe1.receive
        for items in next(sca_iter):
            for pkt, ifn in items:
                receive(pkt, ifn)

    t_vec, t_scalar = _best_of_pair(run_vec, run_scalar, rounds=rounds)
    npkts = rounds * calls * 128 * 2
    assert pe1.stats.rx_packets == npkts  # every burst really went through
    assert pe1.stats.forwarded == npkts

    speedup = t_scalar / t_vec
    _record("batched_high_fanin", {
        "flows": 8,
        "burst": 16,
        "packets_e2e": received,
        "e2e_vector_best_s": t_vec_e2e,
        "e2e_scalar_best_s": t_scalar_e2e,
        "e2e_speedup_vs_scalar": t_scalar_e2e / t_vec_e2e,
        "forwarding_vector_best_s": t_vec,
        "forwarding_scalar_best_s": t_scalar,
        "speedup_vs_scalar": speedup,
        "floor": MIN_BATCH_SPEEDUP,
    })
    _require_floor(speedup, MIN_BATCH_SPEEDUP, (
        f"batched high-fan-in forwarding {speedup:.2f}x vs scalar "
        f"(floor {MIN_BATCH_SPEEDUP}x): vector {t_vec:.3f}s, "
        f"scalar {t_scalar:.3f}s"
    ))
