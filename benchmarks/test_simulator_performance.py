"""Simulator performance: events/second and packets/second.

Not a paper experiment — a regression guard for the library itself.  The
hpc-parallel guidance is measure-first: these benches make the kernel's
hot loop visible so a future "improvement" that slows packet forwarding
by 2x gets caught in CI.
"""

from repro.routing.spf import converge
from repro.sim.engine import Simulator
from repro.topology import Network, attach_host, build_line
from repro.traffic.generators import CbrSource
from repro.traffic.sink import FlowSink


def test_kernel_event_throughput(benchmark):
    """Pure scheduler churn: schedule + fire 50k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 50_000


def test_packet_forwarding_throughput(benchmark):
    """End-to-end: ~20k packets across a 5-hop routed path."""

    def run():
        net = Network(seed=3)
        routers = build_line(net, 5, rate_bps=1e9)
        tx = attach_host(net, routers[0], "10.200.0.1", name="tx", rate_bps=1e9)
        rx = attach_host(net, routers[4], "10.200.0.2", name="rx", rate_bps=1e9)
        converge(net)
        sink = FlowSink(net.sim).attach(rx)
        src = CbrSource(net.sim, tx.send, "perf", "10.200.0.1", "10.200.0.2",
                        payload_bytes=1000, rate_bps=163.2e6)  # ~20k pps for 1s
        src.start(0.0, stop_at=1.0)
        net.run(until=1.2)
        return sink.received("perf")

    received = benchmark(run)
    assert received > 15_000
