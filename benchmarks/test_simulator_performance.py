"""Simulator performance: events/second and packets/second.

Not a paper experiment — a regression guard for the library itself.  The
hpc-parallel guidance is measure-first: these benches make the kernel's
hot loop visible so a future "improvement" that slows packet forwarding
by 2x gets caught in CI.

Besides the pytest-benchmark table, the two tests write their headline
numbers (pkts/sec, events/sec, per-hop µs, speedup vs the pre-pipeline
baseline) to ``BENCH_forwarding.json`` at the repo root, which CI uploads
as a workflow artifact so forwarding throughput is tracked across runs.
"""

import json
from pathlib import Path

from repro.routing.spf import converge
from repro.sim.engine import Simulator
from repro.topology import Network, attach_host, build_line
from repro.traffic.generators import CbrSource
from repro.traffic.sink import FlowSink

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_forwarding.json"

# Mean wall-clock of test_packet_forwarding_throughput on the commit before
# the unified ForwardingPipeline (per-hop closures, no flow/label caches),
# measured on the CI reference machine.  Kept so the emitted speedup keeps
# meaning as the pipeline evolves.
PRE_PIPELINE_FORWARDING_MEAN_S = 1.825


def _record(section: str, payload: dict) -> None:
    """Merge one benchmark's results into BENCH_forwarding.json."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _mean_s(benchmark) -> float | None:
    """Mean wall-clock, or None under ``--benchmark-disable`` (the sharded
    CI pass runs benchmarks as plain tests with no timing machinery)."""
    try:
        return benchmark.stats.stats.mean
    except (AttributeError, TypeError):
        return None


def test_kernel_event_throughput(benchmark):
    """Pure scheduler churn: schedule + fire 50k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    events = benchmark(run)
    assert events == 50_000
    mean_s = _mean_s(benchmark)
    if mean_s is not None:
        _record("kernel", {
            "events": events,
            "mean_s": mean_s,
            "events_per_sec": events / mean_s,
        })


def test_packet_forwarding_throughput(benchmark):
    """End-to-end: ~20k packets across a 5-hop routed path."""

    def run():
        net = Network(seed=3)
        routers = build_line(net, 5, rate_bps=1e9)
        tx = attach_host(net, routers[0], "10.200.0.1", name="tx", rate_bps=1e9)
        rx = attach_host(net, routers[4], "10.200.0.2", name="rx", rate_bps=1e9)
        converge(net)
        sink = FlowSink(net.sim).attach(rx)
        src = CbrSource(net.sim, tx.send, "perf", "10.200.0.1", "10.200.0.2",
                        payload_bytes=1000, rate_bps=163.2e6)  # ~20k pps for 1s
        src.start(0.0, stop_at=1.0)
        net.run(until=1.2)
        return sink.received("perf")

    received = benchmark(run)
    assert received > 15_000
    mean_s = _mean_s(benchmark)
    hops = 7  # tx + 5 routers + rx handle the packet once each
    if mean_s is not None:
        _record("forwarding", {
            "packets": received,
            "hops_per_packet": hops,
            "mean_s": mean_s,
            "pkts_per_sec": received / mean_s,
            "per_hop_us": mean_s / (received * hops) * 1e6,
            "pre_pipeline_mean_s": PRE_PIPELINE_FORWARDING_MEAN_S,
            "speedup_vs_pre_pipeline": PRE_PIPELINE_FORWARDING_MEAN_S / mean_s,
        })
