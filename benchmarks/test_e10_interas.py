"""E10 — Cross-provider VPN (option A): the §5 "multiple carriers" claim."""

from repro.experiments.e10_interas import run_e10
from repro.metrics.table import print_table


def test_e10_interas_table(run_once):
    rows, summary = run_once(run_e10, measure_s=6.0)
    print_table(rows, title="E10 — end-to-end QoS across two providers (option A)")
    print(f"routes exchanged over the border: {summary['routes_exchanged_over_border']}  "
          f"cross-customer leaks: {summary['cross_customer_leaks']}")
    assert summary["voice_sla"].conformant
    assert summary["cross_customer_leaks"] == 0
    assert summary["routes_exchanged_over_border"] > 0
