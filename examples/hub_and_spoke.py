#!/usr/bin/env python3
"""Hub-and-spoke VPN: central policy enforcement via route-target design.

A bank wants every branch-to-branch packet to transit the head office
(where the firewalls and loggers live).  With RFC 2547 that is pure
routing *policy*: spokes import only the hub's route target, the hub's
dual-VRF attachment re-advertises the whole company supernet, and
spoke-to-spoke traffic hairpins through the hub CE — no tunnels to
reconfigure when a branch is added.

Run:  python examples/hub_and_spoke.py
"""

from repro.mpls import Lsr, run_ldp
from repro.net.packet import IPHeader, Packet
from repro.routing import converge
from repro.topology import Network
from repro.vpn import PeRouter, VpnProvisioner


def main() -> None:
    net = Network(seed=3)
    core = net.add_node(Lsr(net.sim, "core"))
    pes = [net.add_node(PeRouter(net.sim, f"pe{i}")) for i in range(3)]
    for pe in pes:
        net.connect(pe, core, 45e6, 1e-3)

    prov = VpnProvisioner(net)
    bank = prov.create_hub_spoke_vpn("bank")
    hq = prov.add_hub_site(bank, pes[0], prefix="10.0.0.0/24")
    branch1 = prov.add_site(bank, pes[1], prefix="10.0.1.0/24")
    branch2 = prov.add_site(bank, pes[2], prefix="10.0.2.0/24")
    converge(net)
    run_ldp(net)
    prov.converge_bgp()

    print("Route targets:")
    print(f"  hub exports  {bank.rt_hub}   (the supernet: 'everything is via HQ')")
    print(f"  spokes export {bank.rt_spoke}, import only {bank.rt_hub}")
    spoke_vrf = pes[1].vrfs["bank-spoke"]
    print(f"\nBranch-1 PE VRF ({len(spoke_vrf)} routes — no direct branch-2 route):")
    for prefix, route in sorted(spoke_vrf.routes().items()):
        target = route.out_ifname if route.kind == "local" else f"hub PE {route.remote_pe}"
        print(f"  {prefix}  ->  {route.kind}: {target}")

    # Prove the hairpin: branch1 -> branch2 transits the HQ CE.
    h1, h2 = branch1.hosts[0], branch2.hosts[0]
    got = []
    h2.add_local_sink(got.append)
    before = hq.ce.stats.rx_packets
    for i in range(5):
        p = Packet(ip=IPHeader(h1.loopback, h2.loopback), payload_bytes=100, seq=i)
        net.sim.schedule(i * 0.01, lambda p=p: h1.send(p))
    net.run(until=1.0)
    print(f"\nbranch1 → branch2: sent 5, delivered {len(got)}, "
          f"HQ CE inspected {hq.ce.stats.rx_packets - before} of them")
    assert len(got) == 5
    assert hq.ce.stats.rx_packets - before == 5


if __name__ == "__main__":
    main()
