#!/usr/bin/env python3
"""Overlapping address spaces, isolation, and a policy-controlled extranet.

Two companies ("red" and "blue") both use the 10.0.0.0/8 plan — byte-for-
byte identical site subnets — on the *same* pair of provider edges.  RFC
2547's RD/RT machinery keeps them perfectly separate (§4's membership /
reachability / data-separation functions), and a third company ("green")
is then granted an extranet into red by a one-line route-target import,
demonstrating that sharing is policy, never accident.

Run:  python examples/overlapping_vpns.py
"""

from repro.experiments.e7_isolation import build_overlap_scenario
from repro.metrics import print_table
from repro.net.address import IPv4Address
from repro.traffic import CbrSource, FlowSink


def main() -> None:
    ctx = build_overlap_scenario(seed=9, extranet=True)
    net, sites = ctx["net"], ctx["sites"]

    print("Provisioned VPNs (note the identical prefixes):")
    for (vpn, idx), site in sorted(sites.items()):
        print(f"  {vpn:6s} site {idx}: {site.prefix}  behind PE {site.pe.name}")

    pe = sites["red", 1].pe
    dst = IPv4Address.parse("10.0.2.10")
    print(f"\nThe same destination {dst} resolves per-VRF on {pe.name}:")
    for vrf_name in ("red", "blue"):
        route = pe.vrfs[vrf_name].lookup(dst)
        print(f"  VRF {vrf_name:5s} -> egress PE {route.remote_pe}, "
              f"VPN label {route.vpn_label}")

    # Blast identical-looking traffic inside red and blue simultaneously,
    # plus green's extranet flow into red.
    sinks = {name: FlowSink(net.sim).attach(sites[name, 2].hosts[0])
             for name in ("red", "blue")}
    sources = {}
    for name in ("red", "blue"):
        h1 = sites[name, 1].hosts[0]
        h2 = sites[name, 2].hosts[0]
        sources[name] = CbrSource(net.sim, h1.send, f"{name}-flow",
                                  str(h1.loopback), str(h2.loopback),
                                  payload_bytes=400, rate_bps=1e6)
    g = sites["green", 1].hosts[0]
    red_dst = sites["red", 2].hosts[0]
    sources["green"] = CbrSource(net.sim, g.send, "green-to-red",
                                 str(g.loopback), str(red_dst.loopback),
                                 payload_bytes=400, rate_bps=0.5e6)
    for s in sources.values():
        s.start(at=0.0, stop_at=3.0)
    net.run(until=3.5)

    rows = []
    for name in ("red", "blue"):
        own = sinks[name].received(f"{name}-flow")
        other = "blue" if name == "red" else "red"
        leaked = sinks[other].received(f"{name}-flow")
        rows.append({"vpn": name, "sent": sources[name].sent,
                     "delivered": own, "leaked_to_other_vpn": leaked})
    rows.append({"vpn": "green->red (extranet)",
                 "sent": sources["green"].sent,
                 "delivered": sinks["red"].received("green-to-red"),
                 "leaked_to_other_vpn": sinks["blue"].received("green-to-red")})
    print_table(rows, title="\nIsolation results")
    assert all(r["leaked_to_other_vpn"] == 0 for r in rows)
    print("\nZero packets crossed a VPN boundary; the extranet flow "
          "reached red only because green imports red's route target.")


if __name__ == "__main__":
    main()
