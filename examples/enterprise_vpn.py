#!/usr/bin/env python3
"""Enterprise VPN with end-to-end QoS — the paper's §5 deployment.

A company with four branch offices buys an MPLS VPN over the 12-node
reference backbone.  Each branch's CPE runs CBQ (voice guaranteed +
priority, data assured, bulk borrows what is left) and marks DiffServ
codepoints; the provider edge maps DSCP into MPLS EXP; the core schedules
on EXP.  Voice and transactional traffic between two branches then share
the backbone with a bulk transfer and another customer's load — and still
meet their SLAs.

Run:  python examples/enterprise_vpn.py
"""

from repro.experiments.common import make_qdisc_factory
from repro.metrics import DATA_SLA, VOICE_SLA, evaluate, print_table, summarize_flow
from repro.mpls import Lsr, run_ldp
from repro.qos import CbqClass, CbqScheduler, DSCP, ba_classifier
from repro.routing import converge
from repro.topology import Network, build_backbone
from repro.traffic import CbrSource, FlowSink, OnOffSource, voice_source
from repro.vpn import PeRouter, VpnProvisioner


def cpe_cbq() -> CbqScheduler:
    """Branch-office CPE: 3-class CBQ on the access uplink."""
    return CbqScheduler(
        [
            CbqClass("voice", rate_bps=0.5e6, priority=0, can_borrow=False),
            CbqClass("data", rate_bps=1.5e6, priority=1, can_borrow=True),
            CbqClass("bulk", rate_bps=0.5e6, priority=2, can_borrow=True),
        ],
        ba_classifier,
    )


def main() -> None:
    net = Network(seed=2026)
    # EXP-aware WFQ on every provider interface.
    net.default_qdisc_factory = make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))

    def factory(n, name):
        cls = PeRouter if name.startswith("E") else Lsr
        return n.add_node(cls(n.sim, name))

    nodes = build_backbone(net, core_rate_bps=20e6, edge_rate_bps=8e6,
                           node_factory=factory)

    prov = VpnProvisioner(net, access_rate_bps=4e6)
    acme = prov.create_vpn("acme")
    branches = [prov.add_site(acme, nodes[pe]) for pe in ("E1", "E3", "E6", "E8")]
    rival = prov.create_vpn("rival")  # another customer sharing the backbone
    r1 = prov.add_site(rival, nodes["E1"])
    r2 = prov.add_site(rival, nodes["E8"])

    converge(net)
    run_ldp(net)
    prov.converge_bgp()

    # CBQ on every acme branch uplink (CE -> PE).
    for site in branches:
        site.ce.interfaces[site.ce_ifname].qdisc = cpe_cbq()

    # Traffic: branch 0 -> branch 3 voice + data + bulk, while the rival
    # customer floods the same core path with best-effort bulk.
    src_host = branches[0].hosts[0]
    dst_host = branches[3].hosts[0]
    sink = FlowSink(net.sim).attach(dst_host)
    rival_sink = FlowSink(net.sim).attach(r2.hosts[0])

    flows = {
        "voice": voice_source(net.sim, src_host.send, "voice",
                              str(src_host.loopback), str(dst_host.loopback)),
        "data": OnOffSource(net.sim, src_host.send, "data",
                            str(src_host.loopback), str(dst_host.loopback),
                            payload_bytes=700, dscp=int(DSCP.AF11),
                            peak_bps=2.5e6, mean_on_s=0.15, mean_off_s=0.35,
                            rng=net.streams.stream("ex.data")),
        "bulk": CbrSource(net.sim, src_host.send, "bulk",
                          str(src_host.loopback), str(dst_host.loopback),
                          payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=5e6),
    }
    rival_bulk = CbrSource(net.sim, r1.hosts[0].send, "rival-bulk",
                           str(r1.hosts[0].loopback), str(r2.hosts[0].loopback),
                           payload_bytes=1400, dscp=int(DSCP.BE), rate_bps=6e6)
    for f in list(flows.values()) + [rival_bulk]:
        f.start(at=0.5, stop_at=8.5)
    net.run(until=9.5)

    rows = []
    for name, src in flows.items():
        stats = summarize_flow(src, sink, duration_s=8.0)
        row = stats.row()
        if name == "voice":
            row["sla"] = "PASS" if evaluate(VOICE_SLA, stats).conformant else "FAIL"
        elif name == "data":
            row["sla"] = "PASS" if evaluate(DATA_SLA, stats).conformant else "FAIL"
        else:
            row["sla"] = "n/a"
        rows.append(row)
    rows.append({**summarize_flow(rival_bulk, rival_sink, duration_s=8.0).row(),
                 "sla": "n/a"})
    print_table(rows, title="Enterprise VPN: per-class results under cross-customer load")

    voice_stats = summarize_flow(flows["voice"], sink, duration_s=8.0)
    verdict = evaluate(VOICE_SLA, voice_stats)
    print(f"\nVoice SLA: {'conformant' if verdict.conformant else 'VIOLATED'}"
          + ("" if verdict.conformant else f" — {'; '.join(verdict.violations())}"))


if __name__ == "__main__":
    main()
