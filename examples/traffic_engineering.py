#!/usr/bin/env python3
"""Traffic engineering demo: steering VPN tunnels off congested links.

The paper's §5 promise is that MPLS TE lets a provider "avoid congested,
constrained or disabled links".  This demo runs the classic fish topology
three ways and prints what happens to three 4 Mb/s flows:

1. Destination-based shortest-path routing: everything piles onto the
   bottom branch; one third of the traffic is lost.
2. CSPF + explicit LSPs with bandwidth reservation: the third tunnel is
   *forced* onto the idle top branch; zero loss.
3. A bottom-branch link is cut: CSPF re-signals around it; admission
   control refuses the tunnel that no longer fits instead of letting it
   wreck the two it can protect.

Run:  python examples/traffic_engineering.py
"""

from repro.experiments.e6_te import run_config
from repro.metrics import print_table


def main() -> None:
    rows = []
    for use_te, fail, note in (
        (False, False, "everything on the IGP shortest path"),
        (True, False, "CSPF spreads tunnels by reservation"),
        (True, True, "G-H link down: reroute + admission control"),
    ):
        result = run_config(use_te=use_te, fail_link=fail, measure_s=6.0)
        print(f"\n=== {result['config']}: {note} ===")
        for i, (stats, path) in enumerate(zip(result["flows"], result["paths"])):
            rows.append({
                "config": result["config"],
                "flow": stats.flow,
                "path": "-".join(path),
                "loss%": round(stats.loss_ratio * 100, 2),
                "goodput_kbps": round(stats.throughput_bps / 1e3, 1),
            })
        print(f"branch utilization: bottom={result['util_bottom']:.2f} "
              f"top={result['util_top']:.2f}  "
              f"aggregate goodput={result['aggregate_goodput_bps'] / 1e6:.2f} Mb/s")
    print_table(rows, title="\nSummary (all configurations)")


if __name__ == "__main__":
    main()
