#!/usr/bin/env python3
"""Capstone: a full provider deployment on the 12-node reference backbone.

Everything the paper describes, running at once, as an operator would see
it: the two-level backbone (Fig. 4), three customers — a gold-tier
enterprise VPN, a silver hub-and-spoke bank, a bronze best-effort shop —
QoS-scheduled cores, TE tunnels with fast-reroute protection on the
enterprise path, IP-SLA probes monitoring each tier, and a mid-run core
link failure that the protected traffic survives.

Prints the provider's dashboard: per-customer probe SLAs, link
utilization of the core mesh, control-plane inventory, and a validation
sweep.

Run:  python examples/backbone_deployment.py   (~15 s)
"""

from repro.experiments.common import make_qdisc_factory
from repro.metrics import VOICE_SLA, ProbeAgent, print_table
from repro.mpls import FastReroute, Lsr, TrafficEngineering, run_ldp
from repro.net.address import Prefix
from repro.mpls import reset_ldp
from repro.routing import converge, reconverge
from repro.topology import Network, build_backbone
from repro.traffic import CbrSource, FlowSink, OnOffSource
from repro.validate import validate
from repro.vpn import BRONZE, GOLD, SILVER, PeRouter, VpnProvisioner, apply_profile

RUN_S = 10.0


def main() -> None:
    net = Network(seed=2000)
    net.default_qdisc_factory = make_qdisc_factory("wfq", weights=(16.0, 4.0, 1.0))

    def factory(n, name):
        cls = PeRouter if name.startswith("E") else Lsr
        return n.add_node(cls(n.sim, name))

    nodes = build_backbone(net, core_rate_bps=30e6, edge_rate_bps=10e6,
                           node_factory=factory)

    # --- customers -----------------------------------------------------
    prov = VpnProvisioner(net, access_rate_bps=8e6)
    enterprise = prov.create_vpn("enterprise")
    ent_sites = [prov.add_site(enterprise, nodes[pe]) for pe in ("E1", "E8")]
    bank = prov.create_hub_spoke_vpn("bank")
    bank_hq = prov.add_hub_site(bank, nodes["E4"])
    bank_sites = [prov.add_site(bank, nodes[pe]) for pe in ("E2", "E6")]
    shop = prov.create_vpn("shop")
    shop_sites = [prov.add_site(shop, nodes[pe]) for pe in ("E3", "E7")]

    converge(net)
    ldp = run_ldp(net)
    bgp = prov.converge_bgp(route_reflector="E1")
    apply_profile(enterprise, GOLD)
    apply_profile(bank, SILVER)
    apply_profile(shop, BRONZE)

    # --- TE + protection for the gold customer's PE pair ---------------
    te = TrafficEngineering(net)
    lsp = te.setup("gold-trunk", "E1", "E8", bandwidth_bps=4e6, php=False)
    te.autoroute(lsp, [Prefix.of(nodes["E8"].loopback, 32)])
    frr = FastReroute(te)
    protected = frr.protect_lsp(lsp)

    # --- traffic ---------------------------------------------------------
    flows = []
    pairs = [
        (ent_sites[0], ent_sites[1], "enterprise", 2.0e6),
        (bank_sites[0], bank_sites[1], "bank", 1.5e6),       # via the HQ CE
        (shop_sites[0], shop_sites[1], "shop", 5.0e6),       # greedy bronze
    ]
    sinks = {}
    for s_from, s_to, name, rate in pairs:
        h1, h2 = s_from.hosts[0], s_to.hosts[0]
        sinks[name] = FlowSink(net.sim).attach(h2)
        src = OnOffSource(net.sim, h1.send, name, str(h1.loopback),
                          str(h2.loopback), payload_bytes=900,
                          peak_bps=rate * 2, mean_on_s=0.2, mean_off_s=0.2,
                          rng=net.streams.stream(f"cap.{name}"))
        src.start(0.5, stop_at=RUN_S)
        flows.append((name, src))
    # Probes, one per customer, in the customer's own tier class.
    probes = {}
    for (s_from, s_to, name, _r), dscp in zip(pairs, (GOLD.dscp, SILVER.dscp, BRONZE.dscp)):
        probes[name] = ProbeAgent(net.sim, s_from.hosts[0], s_to.hosts[0],
                                  str(s_from.hosts[0].loopback),
                                  str(s_to.hosts[0].loopback),
                                  dscp=dscp, interval_s=0.02)
        probes[name].start(1.0, stop_at=RUN_S)

    # --- mid-run failure on a protected core link ----------------------
    plr_link = (protected[0].plr, protected[0].merge_point)

    def fail():
        net.link_between(*plr_link).set_up(False)
        repaired = frr.trigger_link_failure(*plr_link)
        print(f"[t={net.sim.now:.1f}s] core link {plr_link[0]}-{plr_link[1]} "
              f"FAILED; fast reroute repaired {repaired} LSP(s) locally")

        def igp_recovers():
            # The rest of the backbone (LDP-routed customers) waits for the
            # tuned IGP: reconverge + re-distribute labels 1 s later.  The
            # gold trunk never noticed; everyone else eats a 1 s outage.
            reconverge(net)
            reset_ldp(net)
            run_ldp(net)
            print(f"[t={net.sim.now:.1f}s] IGP reconverged; LDP re-distributed")
        net.sim.schedule(1.0, igp_recovers)
    net.sim.schedule(RUN_S / 2, fail)

    net.run(until=RUN_S + 1.0)

    # --- dashboard ------------------------------------------------------
    rows = []
    for name, src in flows:
        probe = probes[name]
        verdict = probe.check(VOICE_SLA, duration_s=RUN_S - 1.0)
        rows.append({
            "customer": name,
            "tier": {"enterprise": "gold", "bank": "silver", "shop": "bronze"}[name],
            "delivered": sinks[name].received(name),
            "offered": src.sent,
            "probe_p95_ms": round(1e3 * probe.delay_percentile(95), 2),
            "probe_loss%": round(100 * probe.loss_ratio(), 2),
            "voice_sla": "PASS" if verdict.conformant else "FAIL",
        })
    print_table(rows, title="Per-customer service dashboard (probe-measured)")

    util = net.link_utilization(RUN_S)
    core = {k: round(v, 3) for k, v in util.items()
            if k.split("->")[0].startswith("P") and "P" in k.split("->")[1]}
    busiest = sorted(core.items(), key=lambda kv: -kv[1])[:6]
    print_table([{"core_link": k, "utilization": v} for k, v in busiest],
                title="\nBusiest core links")

    print(f"\nControl plane: {ldp.sessions} LDP sessions, "
          f"{bgp.sessions} iBGP sessions (route reflector), "
          f"{bgp.routes_imported} VPN routes imported, "
          f"{len(te.lsps)} TE LSPs ({len(protected)} protected hops).")
    errors = [i for i in validate(net) if i.severity == "error"]
    print(f"Validation sweep: {len(errors)} errors.")
    assert not errors


if __name__ == "__main__":
    main()
