#!/usr/bin/env python3
"""Quickstart: provision a two-site BGP/MPLS VPN and ping across it.

Builds the smallest interesting deployment — two PEs around one P router,
one customer VPN with a site behind each PE — then runs LDP + MP-BGP and
sends traffic end to end.  Prints the control-plane state the provisioning
created and the measured one-way delay.

Run:  python examples/quickstart.py
"""

from repro.mpls import Lsr, run_ldp
from repro.net.packet import IPHeader, Packet
from repro.routing import converge
from repro.topology import Network
from repro.traffic import CbrSource, FlowSink
from repro.metrics import print_table, summarize_flow
from repro.vpn import PeRouter, VpnProvisioner


def main() -> None:
    # 1. Provider backbone: pe1 -- p1 -- pe2 at 10 Mb/s.
    net = Network(seed=1)
    pe1 = net.add_node(PeRouter(net.sim, "pe1"))
    p1 = net.add_node(Lsr(net.sim, "p1"))
    pe2 = net.add_node(PeRouter(net.sim, "pe2"))
    net.connect(pe1, p1, rate_bps=10e6, delay_s=1e-3)
    net.connect(p1, pe2, rate_bps=10e6, delay_s=1e-3)

    # 2. Customer VPN: one site behind each PE (CE + host are created for
    #    you; the site prefixes may overlap any other customer's plan).
    prov = VpnProvisioner(net)
    vpn = prov.create_vpn("acme")
    site_a = prov.add_site(vpn, pe1, prefix="10.1.0.0/24")
    site_b = prov.add_site(vpn, pe2, prefix="10.2.0.0/24")

    # 3. Control plane: converge the IGP, distribute labels, run MP-BGP.
    converge(net)
    ldp = run_ldp(net)
    bgp = prov.converge_bgp()
    print(f"LDP: {ldp.sessions} sessions, {ldp.mapping_messages} label mappings")
    print(f"BGP: {bgp.sessions} session(s), {bgp.updates_sent} updates, "
          f"{bgp.routes_imported} routes imported")
    print(f"pe1 VRF '{vpn.name}' routes:")
    for prefix, route in sorted(pe1.vrfs["acme"].routes().items()):
        where = route.out_ifname if route.kind == "local" else (
            f"PE {route.remote_pe} label {route.vpn_label}")
        print(f"  {prefix}  ->  {route.kind}: {where}")

    # 4. Data plane: 1 Mb/s CBR from the site-A host to the site-B host.
    h_a, h_b = site_a.hosts[0], site_b.hosts[0]
    sink = FlowSink(net.sim).attach(h_b)
    src = CbrSource(net.sim, h_a.send, "ping", str(h_a.loopback),
                    str(h_b.loopback), payload_bytes=500, rate_bps=1e6)
    src.start(at=0.0, stop_at=2.0)
    net.run(until=2.5)

    stats = summarize_flow(src, sink, duration_s=2.0)
    print_table([stats.row()], title="\nEnd-to-end flow over the VPN")


if __name__ == "__main__":
    main()
