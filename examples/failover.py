#!/usr/bin/env python3
"""Failure recovery demo: IGP reconvergence vs MPLS fast reroute.

Cuts the fish topology's bottom-branch link mid-call and shows what a
2 Mb/s flow experiences under three recovery regimes — year-2000 default
IGP timers (5 s), an aggressively tuned IGP (1 s), and a pre-signaled
RSVP-TE bypass tunnel with 50 ms loss-of-light detection.  The outage a
user hears is lost-packets ÷ packet-rate.

Run:  python examples/failover.py
"""

from repro.experiments.e11_resilience import VARIANTS, run_variant
from repro.metrics import print_table


def main() -> None:
    rows = []
    for name, mode, delay in VARIANTS:
        result = run_variant(name, mode, delay, measure_s=10.0)
        rows.append(
            {
                "recovery": name,
                "mechanism": "local LFIB rewrite (bypass LSP)" if mode == "frr"
                             else "flood + SPF rerun + LDP redistribution",
                "detect+recover_s": delay,
                "packets_lost": result["lost"],
                "outage_s": round(result["outage_s"], 3),
            }
        )
    print_table(rows, title="Link failure at t=2.0s, 2 Mb/s CBR probe flow")
    frr = next(r for r in rows if r["recovery"] == "frr")
    default = next(r for r in rows if r["recovery"] == "igp-default")
    print(f"\nFast reroute shortens the outage {default['outage_s'] / frr['outage_s']:.0f}x "
          f"versus default IGP timers — a local table write instead of a "
          f"network-wide reconvergence.")


if __name__ == "__main__":
    main()
